/**
 * @file
 * Tests for the persistent result cache (src/cache) and its checksummed
 * framing (src/io/framing): crash-safety and corruption fallback,
 * single-flight deduplication, LRU eviction, and end-to-end replay of
 * compiled circuits through PipelineOptions::cache.
 */
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_cache.hpp"
#include "compose/composer.hpp"
#include "geyser/pipeline.hpp"
#include "io/framing.hpp"
#include "io/serialize.hpp"

namespace geyser {
namespace {

namespace fs = std::filesystem;

/** Fresh unique cache directory per test, removed on teardown. */
class CacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        char pattern[] = "/tmp/geyser_cache_test_XXXXXX";
        ASSERT_NE(::mkdtemp(pattern), nullptr);
        dir_ = pattern;
    }

    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    cache::CacheConfig config(long long max_bytes = 0) const
    {
        cache::CacheConfig cfg;
        cfg.dir = dir_;
        cfg.maxBytes = max_bytes;
        cfg.crossProcessWaitMs = 0;  // No other processes in tests.
        cfg.evictionGraceMs = 0;     // Evict freshly written entries too.
        return cfg;
    }

    std::string dir_;
};

TEST(Framing, RoundTripsArbitraryPayload)
{
    const std::string payload = "line one\nline two\n\0binary\x7f ok";
    const std::string framed = io::frameWithChecksum(payload);
    const auto back = io::unframeWithChecksum(framed);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, payload);
}

TEST(Framing, DetectsTruncationAtEveryLength)
{
    const std::string framed = io::frameWithChecksum("some cached payload");
    for (size_t len = 0; len < framed.size(); ++len)
        EXPECT_FALSE(io::unframeWithChecksum(framed.substr(0, len)))
            << "truncation to " << len << " bytes must not unframe";
}

TEST(Framing, DetectsBitFlip)
{
    std::string framed = io::frameWithChecksum("payload under test");
    const size_t mid = framed.size() / 2;
    framed[mid] = static_cast<char>(framed[mid] ^ 0x20);
    EXPECT_FALSE(io::unframeWithChecksum(framed).has_value());
}

TEST(Framing, RejectsVersionSkew)
{
    std::string framed = io::frameWithChecksum("payload");
    const size_t v = framed.find("v1");
    ASSERT_NE(v, std::string::npos);
    framed[v + 1] = '9';
    EXPECT_FALSE(io::unframeWithChecksum(framed).has_value());
}

TEST(Framing, AtomicWriteLeavesNoTempFileBehind)
{
    char pattern[] = "/tmp/geyser_framing_test_XXXXXX";
    ASSERT_NE(::mkdtemp(pattern), nullptr);
    const std::string dir = pattern;
    const std::string path = dir + "/file.txt";
    ASSERT_TRUE(io::writeFileAtomic(path, "hello"));
    EXPECT_EQ(io::readFileBytes(path).value_or(""), "hello");
    size_t files = 0;
    for ([[maybe_unused]] const auto &e : fs::directory_iterator(dir))
        ++files;
    EXPECT_EQ(files, 1u);
    std::error_code ec;
    fs::remove_all(dir, ec);
}

TEST(Framing, CreateDirectoriesIsRecursive)
{
    char pattern[] = "/tmp/geyser_framing_dirs_XXXXXX";
    ASSERT_NE(::mkdtemp(pattern), nullptr);
    const std::string nested = std::string(pattern) + "/a/b/c";
    EXPECT_TRUE(io::createDirectories(nested));
    EXPECT_TRUE(fs::is_directory(nested));
    EXPECT_TRUE(io::createDirectories(nested));  // Idempotent.
    std::error_code ec;
    fs::remove_all(pattern, ec);
}

TEST_F(CacheTest, StoreLoadRoundTrip)
{
    cache::ResultCache cache(config());
    ASSERT_TRUE(cache.enabled());
    EXPECT_FALSE(cache.load("c-abc").has_value());
    ASSERT_TRUE(cache.store("c-abc", "the payload"));
    const auto hit = cache.load("c-abc");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "the payload");
    EXPECT_EQ(cache.stats().hits, 1);
    EXPECT_EQ(cache.stats().misses, 1);
    EXPECT_EQ(cache.stats().corrupt, 0);
}

TEST_F(CacheTest, NestedCacheDirIsCreatedRecursively)
{
    cache::CacheConfig cfg = config();
    cfg.dir = dir_ + "/deeply/nested/cache";
    cache::ResultCache cache(cfg);
    ASSERT_TRUE(cache.enabled());  // Used to silently disable forever.
    ASSERT_TRUE(cache.store("c-key", "value"));
    EXPECT_EQ(cache.load("c-key").value_or(""), "value");
}

TEST_F(CacheTest, UncreatableDirDisablesGracefully)
{
    cache::CacheConfig cfg = config();
    cfg.dir = "/proc/definitely/not/writable";
    cache::ResultCache cache(cfg);
    EXPECT_FALSE(cache.enabled());
    EXPECT_FALSE(cache.store("c-key", "value"));
    EXPECT_FALSE(cache.load("c-key").has_value());
}

TEST_F(CacheTest, DisabledCacheNeverTouchesDisk)
{
    cache::CacheConfig cfg = config();
    cfg.enabled = false;
    cache::ResultCache cache(cfg);
    EXPECT_FALSE(cache.enabled());
    EXPECT_FALSE(cache.store("c-key", "value"));
    size_t files = 0;
    for ([[maybe_unused]] const auto &e : fs::directory_iterator(dir_))
        ++files;
    EXPECT_EQ(files, 0u);
}

TEST_F(CacheTest, TruncatedEntryIsQuarantinedAndRecomputable)
{
    cache::ResultCache cache(config());
    ASSERT_TRUE(cache.store("c-trunc", "a payload long enough to truncate"));
    const std::string path = cache.entryPath("c-trunc");
    const auto framed = io::readFileBytes(path);
    ASSERT_TRUE(framed.has_value());
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << framed->substr(0, framed->size() / 2);
    }
    EXPECT_FALSE(cache.load("c-trunc").has_value());
    EXPECT_EQ(cache.stats().corrupt, 1);
    EXPECT_FALSE(fs::exists(path)) << "corrupt entry must be quarantined";
    EXPECT_TRUE(fs::exists(path + ".corrupt"));
    // The slot is reusable: a recompute stores and loads cleanly.
    ASSERT_TRUE(cache.store("c-trunc", "recomputed"));
    EXPECT_EQ(cache.load("c-trunc").value_or(""), "recomputed");
    EXPECT_EQ(cache.stats().corrupt, 1);
}

TEST_F(CacheTest, BitFlippedEntryIsMissNotCrash)
{
    cache::ResultCache cache(config());
    ASSERT_TRUE(cache.store("c-rot", "payload whose bits will rot"));
    const std::string path = cache.entryPath("c-rot");
    auto framed = io::readFileBytes(path);
    ASSERT_TRUE(framed.has_value());
    (*framed)[framed->size() / 2] ^= 0x01;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << *framed;
    }
    EXPECT_FALSE(cache.load("c-rot").has_value());
    EXPECT_EQ(cache.stats().corrupt, 1);
}

TEST_F(CacheTest, FrameVersionSkewIsMiss)
{
    cache::ResultCache cache(config());
    // An entry written by a hypothetical future/incompatible frame
    // format must be treated as a miss, not parsed.
    ASSERT_TRUE(io::writeFileAtomic(cache.entryPath("c-skew"),
                                    "geyser-frame v9 5\nhello\nfnv64 "
                                    "0000000000000000\n"));
    EXPECT_FALSE(cache.load("c-skew").has_value());
    EXPECT_EQ(cache.stats().corrupt, 1);
}

TEST_F(CacheTest, GetOrComputeMissThenHit)
{
    cache::ResultCache cache(config());
    int computes = 0;
    bool hit = true;
    const auto value = cache.getOrCompute("c-k", [&] {
        ++computes;
        return std::string("computed-value");
    }, &hit);
    EXPECT_EQ(value, "computed-value");
    EXPECT_FALSE(hit);
    EXPECT_EQ(computes, 1);
    const auto again = cache.getOrCompute("c-k", [&] {
        ++computes;
        return std::string("should-not-run");
    }, &hit);
    EXPECT_EQ(again, "computed-value");
    EXPECT_TRUE(hit);
    EXPECT_EQ(computes, 1);
}

TEST_F(CacheTest, SingleFlightComputesOnceAcrossThreads)
{
    cache::ResultCache cache(config());
    std::atomic<int> computes{0};
    constexpr int kThreads = 8;
    std::vector<std::string> results(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            results[static_cast<size_t>(t)] =
                cache.getOrCompute("c-flight", [&] {
                    ++computes;
                    // Give the other threads time to pile onto the latch.
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(100));
                    return std::string("flight-payload");
                });
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(computes.load(), 1) << "concurrent misses must compute once";
    for (const auto &r : results)
        EXPECT_EQ(r, "flight-payload");
    EXPECT_GE(cache.stats().singleflightWaits, 1);
}

TEST_F(CacheTest, SingleFlightRecoversWhenComputeThrows)
{
    cache::ResultCache cache(config());
    EXPECT_THROW(cache.getOrCompute("c-throw", []() -> std::string {
        throw std::runtime_error("compose exploded");
    }), std::runtime_error);
    // The flight latch must have been released: a retry computes.
    const auto value =
        cache.getOrCompute("c-throw", [] { return std::string("ok"); });
    EXPECT_EQ(value, "ok");
}

TEST_F(CacheTest, LruEvictionRespectsSizeCapAndRecency)
{
    const std::string payload(4096, 'x');
    // Cap at roughly four entries' worth of payload.
    cache::ResultCache cache(config(4 * 5000));
    for (int i = 0; i < 12; ++i) {
        ASSERT_TRUE(cache.store("c-entry" + std::to_string(i), payload));
        // Distinct mtimes so LRU ordering is well defined even on
        // coarse-grained filesystem timestamps.
        std::this_thread::sleep_for(std::chrono::milliseconds(15));
    }
    EXPECT_LE(cache.diskUsageBytes(), 4 * 5000);
    EXPECT_GE(cache.stats().evicted, 1);
    // The newest entry always survives; the oldest must be gone.
    EXPECT_TRUE(cache.load("c-entry11").has_value());
    EXPECT_FALSE(fs::exists(cache.entryPath("c-entry0")));
}

TEST_F(CacheTest, CompileThroughCacheReplaysIdenticalResult)
{
    Circuit logical(3);
    logical.append(Gate(GateKind::U3, 0, 0.3, 0.1, -0.4));
    logical.append(Gate(GateKind::CZ, 0, 1));
    logical.append(Gate(GateKind::U3, 2, -1.0, 0.2, 0.7));
    logical.append(Gate(GateKind::CZ, 1, 2));

    cache::ResultCache cache(config());
    PipelineOptions options;
    options.cache = &cache;

    const CompileResult cold =
        compile(Technique::Baseline, logical, options);
    EXPECT_EQ(cache.stats().hits, 0);
    const CompileResult warm =
        compile(Technique::Baseline, logical, options);
    EXPECT_GE(cache.stats().hits, 1);

    EXPECT_EQ(circuitToText(warm.physical), circuitToText(cold.physical));
    EXPECT_EQ(warm.technique, cold.technique);
    EXPECT_EQ(warm.swapsInserted, cold.swapsInserted);
    EXPECT_EQ(warm.finalLayout, cold.finalLayout);
    EXPECT_EQ(warm.initialLayout, cold.initialLayout);
    EXPECT_EQ(warm.stats.totalPulses, cold.stats.totalPulses);
    EXPECT_EQ(warm.stats.depthPulses, cold.stats.depthPulses);
}

TEST_F(CacheTest, CompileKeySeparatesTechniquesAndCircuits)
{
    Circuit a(2);
    a.append(Gate(GateKind::CZ, 0, 1));
    Circuit b(2);
    b.append(Gate(GateKind::CZ, 0, 1));
    b.append(Gate(GateKind::U3, 0, 0.1, 0.2, 0.3));

    PipelineOptions options;
    const auto keyA =
        cache::compileCacheKey(a, options, Technique::Baseline);
    EXPECT_EQ(keyA, cache::compileCacheKey(a, options, Technique::Baseline));
    EXPECT_NE(keyA, cache::compileCacheKey(a, options, Technique::OptiMap));
    EXPECT_NE(keyA, cache::compileCacheKey(b, options, Technique::Baseline));
    PipelineOptions other = options;
    other.compose.maxLayers = 3;
    EXPECT_NE(keyA, cache::compileCacheKey(a, other, Technique::Baseline));
    // Observability/verification knobs do not change the output.
    PipelineOptions traced = options;
    traced.trace = true;
    traced.parallelCompose = false;
    EXPECT_EQ(keyA, cache::compileCacheKey(a, traced, Technique::Baseline));
}

TEST_F(CacheTest, CorruptCompileEntryRecompilesWithoutError)
{
    Circuit logical(2);
    logical.append(Gate(GateKind::U3, 0, 0.5, 0.0, 0.0));
    logical.append(Gate(GateKind::CZ, 0, 1));

    cache::ResultCache cache(config());
    PipelineOptions options;
    options.cache = &cache;
    const CompileResult cold =
        compile(Technique::Baseline, logical, options);

    // Truncate the stored entry mid-payload.
    const std::string key =
        cache::compileCacheKey(logical, options, Technique::Baseline);
    const std::string path = cache.entryPath(key);
    ASSERT_TRUE(fs::exists(path));
    const auto framed = io::readFileBytes(path);
    ASSERT_TRUE(framed.has_value());
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << framed->substr(0, framed->size() / 3);
    }

    const CompileResult recovered =
        compile(Technique::Baseline, logical, options);
    EXPECT_EQ(circuitToText(recovered.physical),
              circuitToText(cold.physical));
    EXPECT_EQ(cache.stats().corrupt, 1);
    // And the recompute healed the entry: next compile is a clean hit.
    const long corruptBefore = cache.stats().corrupt;
    compile(Technique::Baseline, logical, options);
    EXPECT_EQ(cache.stats().corrupt, corruptBefore);
    EXPECT_GE(cache.stats().hits, 1);
}

TEST_F(CacheTest, ComposeResultTextRoundTrip)
{
    ComposeResult result;
    result.circuit = Circuit(2);
    result.circuit.append(Gate(GateKind::U3, 0, 0.25, -0.5, 1.0));
    result.circuit.append(Gate(GateKind::CZ, 0, 1));
    result.composed = true;
    result.layersUsed = 2;
    result.hsd = 3.5e-7;
    result.evaluations = 1234;
    result.pulsesSaved = 9;

    const auto back = composeResultFromText(composeResultToText(result));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(circuitToText(back->circuit), circuitToText(result.circuit));
    EXPECT_EQ(back->composed, result.composed);
    EXPECT_EQ(back->layersUsed, result.layersUsed);
    EXPECT_DOUBLE_EQ(back->hsd, result.hsd);
    EXPECT_EQ(back->evaluations, result.evaluations);
    EXPECT_EQ(back->pulsesSaved, result.pulsesSaved);
    EXPECT_FALSE(composeResultFromText("garbage").has_value());
}

TEST_F(CacheTest, ComposeSpillWritesBlockEntries)
{
    cache::ResultCache cache(config());
    ComposeOptions options;
    options.spill = &cache;
    // An entangler-free block composes exactly (no search), with angles
    // unlikely to collide with any other test's memo entries.
    Circuit block(1);
    block.append(Gate(GateKind::U3, 0, 0.112233, -0.445566, 0.778899));
    const ComposeResult composed = composeBlockCached(block, options);

    size_t blockEntries = 0;
    for (const auto &entry : fs::directory_iterator(dir_)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("b-", 0) == 0)
            ++blockEntries;
    }
    EXPECT_EQ(blockEntries, 1u) << "composition must spill to the cache";

    // The spilled payload replays to the same circuit.
    bool checked = false;
    for (const auto &entry : fs::directory_iterator(dir_)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("b-", 0) != 0)
            continue;
        const auto framed = io::readFileBytes(entry.path().string());
        ASSERT_TRUE(framed.has_value());
        const auto payload = io::unframeWithChecksum(*framed);
        ASSERT_TRUE(payload.has_value());
        const auto replayed = composeResultFromText(*payload);
        ASSERT_TRUE(replayed.has_value());
        EXPECT_EQ(circuitToText(replayed->circuit),
                  circuitToText(composed.circuit));
        checked = true;
    }
    EXPECT_TRUE(checked);
}


// ---- Satellite 1: stale-lock stat-error handling (PR 10) -------------

TEST(LockWatch, OkObservationsAreFreshUntilStaleAge)
{
    using namespace std::chrono;
    cache::detail::LockWatch watch(minutes(10));
    const auto now = steady_clock::now();
    EXPECT_TRUE(watch.isFresh(cache::detail::LockStat::Ok, seconds(1),
                              now));
    EXPECT_TRUE(watch.isFresh(cache::detail::LockStat::Ok,
                              minutes(10) - seconds(1), now));
    EXPECT_FALSE(watch.isFresh(cache::detail::LockStat::Ok, minutes(10),
                               now));
    EXPECT_FALSE(watch.isFresh(cache::detail::LockStat::Ok, minutes(20),
                               now));
}

TEST(LockWatch, MissingLockIsNeverFresh)
{
    using namespace std::chrono;
    cache::detail::LockWatch watch(minutes(10));
    EXPECT_FALSE(watch.isFresh(cache::detail::LockStat::Missing,
                               seconds(0), steady_clock::now()));
}

TEST(LockWatch, StatErrorIsFreshOnlyForStaleAgeFromFirstObservation)
{
    // The regression this pins down: a stat *error* (EACCES, EIO — not
    // ENOENT) must not be read as "the lock is stale, barge ahead".
    // The lock is presumed held from the first failed observation and
    // only treated as abandoned once the stale-age budget has elapsed
    // across repeated failures.
    using namespace std::chrono;
    cache::detail::LockWatch watch(minutes(10));
    const auto t0 = steady_clock::now();
    EXPECT_TRUE(watch.isFresh(cache::detail::LockStat::Error, seconds(0),
                              t0));
    EXPECT_TRUE(watch.isFresh(cache::detail::LockStat::Error, seconds(0),
                              t0 + minutes(10) - seconds(1)));
    EXPECT_FALSE(watch.isFresh(cache::detail::LockStat::Error, seconds(0),
                               t0 + minutes(10)));

    // A successful stat resets the error clock: a fresh error after an
    // Ok observation gets a full budget again.
    cache::detail::LockWatch reset(minutes(10));
    EXPECT_TRUE(reset.isFresh(cache::detail::LockStat::Error, seconds(0),
                              t0));
    EXPECT_TRUE(reset.isFresh(cache::detail::LockStat::Ok, seconds(1),
                              t0 + minutes(5)));
    EXPECT_TRUE(reset.isFresh(cache::detail::LockStat::Error, seconds(0),
                              t0 + minutes(12)));
    EXPECT_FALSE(reset.isFresh(cache::detail::LockStat::Error, seconds(0),
                               t0 + minutes(22)));
}

// ---- Satellite 2: eviction vs non-entry files + grace window ---------

TEST_F(CacheTest, EvictionSkipsNonEntryFilesAndJanitorsStaleLitter)
{
    const auto backdate = [](const fs::path &p) {
        fs::last_write_time(p,
                            fs::file_time_type::clock::now() -
                                std::chrono::minutes(20));
    };
    const auto plant = [&](const std::string &name, bool old) {
        const fs::path p = fs::path(dir_) / name;
        std::ofstream(p) << std::string(64, 'z');
        if (old)
            backdate(p);
        return p;
    };
    // A live lock (fresh), litter a dead process abandoned (old), and a
    // foreign file that is not the cache's to manage however old it is.
    const fs::path freshLock = plant("inflight.lock", false);
    const fs::path staleLock = plant("dead.lock", true);
    const fs::path staleTmp = plant("e.gce.tmp4242", true);
    const fs::path staleCorrupt = plant("bad.gce.corrupt", true);
    const fs::path foreign = plant("README.txt", true);

    const std::string payload(4096, 'x');
    cache::ResultCache cache(config(4 * 5000));
    for (int i = 0; i < 12; ++i) {
        ASSERT_TRUE(cache.store("c-entry" + std::to_string(i), payload));
        std::this_thread::sleep_for(std::chrono::milliseconds(15));
    }

    // Entries were evicted, but never the non-entry files...
    EXPECT_GE(cache.stats().evicted, 1);
    EXPECT_TRUE(fs::exists(freshLock));
    EXPECT_TRUE(fs::exists(foreign));
    // ...while the janitor reaped exactly the abandoned litter.
    EXPECT_FALSE(fs::exists(staleLock));
    EXPECT_FALSE(fs::exists(staleTmp));
    EXPECT_FALSE(fs::exists(staleCorrupt));
    EXPECT_EQ(cache.stats().janitorRemoved, 3);
}

TEST_F(CacheTest, EvictionGraceWindowShieldsFreshlyWrittenEntries)
{
    const std::string payload(4096, 'x');
    cache::CacheConfig cfg = config(4 * 5000);
    cfg.evictionGraceMs = 60'000;
    cache::ResultCache cache(cfg);
    // Every entry is younger than the grace window: the cap may be
    // exceeded transiently, but nothing fresh is deleted.
    for (int i = 0; i < 12; ++i)
        ASSERT_TRUE(cache.store("c-young" + std::to_string(i), payload));
    EXPECT_EQ(cache.stats().evicted, 0);
    for (int i = 0; i < 12; ++i)
        EXPECT_TRUE(cache.load("c-young" + std::to_string(i)).has_value())
            << i;

    // Once entries age past the window they become candidates again.
    for (int i = 0; i < 12; ++i)
        fs::last_write_time(cache.entryPath("c-young" + std::to_string(i)),
                            fs::file_time_type::clock::now() -
                                std::chrono::minutes(2));
    ASSERT_TRUE(cache.store("c-trigger", payload));
    EXPECT_GE(cache.stats().evicted, 1);
    EXPECT_TRUE(cache.load("c-trigger").has_value());
    EXPECT_FALSE(fs::exists(cache.entryPath("c-young0")));
}

TEST_F(CacheTest, EvictionFromASecondProcessSparesLocksAndFreshEntries)
{
    // Two-process shape of the same invariants: one process holds a
    // lock and has just published an entry; another process's eviction
    // pass (over the shared directory) must not delete either.
    const std::string payload(4096, 'x');
    {
        cache::ResultCache writer(config());  // Unbounded: no eviction.
        for (int i = 0; i < 12; ++i)
            ASSERT_TRUE(writer.store("c-old" + std::to_string(i),
                                     payload));
    }
    for (int i = 0; i < 12; ++i) {
        const fs::path p = fs::path(dir_) / ("c-old" + std::to_string(i) +
                                             ".gce");
        fs::last_write_time(p, fs::file_time_type::clock::now() -
                                   std::chrono::minutes(2) -
                                   std::chrono::seconds(i));
    }
    const fs::path heldLock = fs::path(dir_) / "c-held.gce.lock";
    std::ofstream(heldLock) << "pid 12345";

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // The second process: a capped cache with the default-style
        // grace window stores one fresh entry, which runs eviction over
        // everything the first process left behind.
        cache::CacheConfig cfg;
        cfg.dir = dir_;
        cfg.maxBytes = 4 * 5000;
        cfg.crossProcessWaitMs = 0;
        cfg.evictionGraceMs = 60'000;
        cache::ResultCache evictor(cfg);
        const bool stored = evictor.store("c-fresh", payload);
        const bool evicted = evictor.stats().evicted >= 1;
        ::_exit(stored && evicted ? 0 : 1);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);

    // The lock guarding the first process's in-flight compute survived,
    // as did the second process's own fresh entry; the old generation
    // was trimmed toward the cap.
    EXPECT_TRUE(fs::exists(heldLock));
    cache::ResultCache reader(config());
    EXPECT_TRUE(reader.load("c-fresh").has_value());
    // LRU trims oldest-first, so the most backdated entry goes first.
    EXPECT_FALSE(fs::exists(reader.entryPath("c-old11")));
    long long remaining = 0;
    for (const auto &entry : fs::directory_iterator(dir_))
        if (entry.path().extension() == ".gce")
            remaining += static_cast<long long>(entry.file_size());
    EXPECT_LE(remaining, 4 * 5000 + 5000);
}

}  // namespace
}  // namespace geyser
