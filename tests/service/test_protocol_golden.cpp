/**
 * @file
 * Golden byte-transcript tests: checked-in request/response frames
 * (tests/service/golden/protocol_v1.txt) must parse, and re-encoding
 * the parsed message must reproduce the exact original bytes. Any wire
 * drift — field order, spacing, framing, version token — fails here
 * and therefore becomes a deliberate, reviewed golden-file change.
 *
 * Transcript format: records of
 *   === <name> <request|response> <nbytes>\n
 * followed by exactly <nbytes> raw frame bytes.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "service/protocol.hpp"

using namespace geyser;
using namespace geyser::service;

namespace {

struct GoldenRecord
{
    std::string name;
    bool isRequest = false;
    std::string bytes;
};

std::vector<GoldenRecord>
loadGolden(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    std::vector<GoldenRecord> records;
    size_t pos = 0;
    while (pos < text.size()) {
        const size_t nl = text.find('\n', pos);
        EXPECT_NE(nl, std::string::npos) << "truncated record header";
        std::istringstream header(text.substr(pos, nl - pos));
        std::string marker, name, kind;
        size_t nbytes = 0;
        header >> marker >> name >> kind >> nbytes;
        EXPECT_EQ(marker, "===") << "bad record header at byte " << pos;
        EXPECT_TRUE(kind == "request" || kind == "response") << name;
        EXPECT_LE(nl + 1 + nbytes, text.size()) << name << " truncated";
        GoldenRecord record;
        record.name = name;
        record.isRequest = kind == "request";
        record.bytes = text.substr(nl + 1, nbytes);
        records.push_back(std::move(record));
        pos = nl + 1 + nbytes;
    }
    return records;
}

/** All pinned transcripts: the original v1 grammar, the PR-7
 *  observability verbs (metrics/trace), and the PR-10 fleet batch
 *  verb — each new verb gets its own file so the earlier transcripts
 *  stay byte-identical across PRs. */
std::vector<std::string>
goldenPaths()
{
    const std::string dir(GEYSER_SERVICE_GOLDEN_DIR);
    return {dir + "/protocol_v1.txt", dir + "/protocol_v1_obs.txt",
            dir + "/protocol_v1_fleet.txt"};
}

std::vector<GoldenRecord>
loadAllGolden()
{
    std::vector<GoldenRecord> all;
    for (const std::string &path : goldenPaths()) {
        auto records = loadGolden(path);
        all.insert(all.end(), records.begin(), records.end());
    }
    return all;
}

}  // namespace

TEST(ProtocolGolden, TranscriptIsNonTrivial)
{
    EXPECT_GE(loadGolden(goldenPaths()[0]).size(), 12u);
    EXPECT_GE(loadGolden(goldenPaths()[1]).size(), 5u);
    EXPECT_GE(loadGolden(goldenPaths()[2]).size(), 4u);
}

TEST(ProtocolGolden, EveryFrameParsesAndReEncodesByteExact)
{
    for (const GoldenRecord &record : loadAllGolden()) {
        SCOPED_TRACE(record.name);
        if (record.isRequest) {
            Request parsed;
            ASSERT_NO_THROW(parsed = parseRequest(record.bytes));
            EXPECT_EQ(encodeRequest(parsed), record.bytes);
        } else {
            Response parsed;
            ASSERT_NO_THROW(parsed = parseResponse(record.bytes));
            EXPECT_EQ(encodeResponse(parsed), record.bytes);
        }
    }
}

TEST(ProtocolGolden, MagicTokenIsPinnedToVersionOne)
{
    // The transcript file pins grammar v1; if kProtocolVersion moves,
    // a new golden file must be cut alongside it.
    EXPECT_EQ(kProtocolVersion, 1);
    for (const GoldenRecord &record : loadAllGolden())
        EXPECT_EQ(record.bytes.rfind("geyser/1 ", 0), 0u) << record.name;
}
