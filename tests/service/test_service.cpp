/**
 * @file
 * End-to-end tests for the compile service: in-process CompileService
 * round trips (submit/poll/fetch, error-kind assertions for invalid
 * QASM, deadline expiry, cancellation mid-compile, warm-cache
 * resubmission) and full socket round trips through SocketServer +
 * ServiceClient, including malformed-frame and shutdown handling.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <fstream>
#include <future>
#include <string>
#include <thread>

#include "algos/algos.hpp"
#include "algos/suite.hpp"
#include "cache/result_cache.hpp"
#include "common/error.hpp"
#include "io/serialize.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/prometheus.hpp"
#include "service/access_log.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

using namespace geyser;
using namespace geyser::service;

namespace {

/** QASM text of a built-in benchmark (multiplier-5 ≈ 2 ms, adder-4 ≈ 250 ms). */
std::string
qasmFor(const std::string &benchmark)
{
    return circuitToQasm(benchmarkByName(benchmark).make());
}

JobSpec
specFor(const std::string &benchmark)
{
    JobSpec spec;
    spec.qasm = qasmFor(benchmark);
    spec.useCache = false;
    return spec;
}

/** Poll until the job reaches a terminal state (fails the test if it
 *  never does within `budget`). */
JobInfo
waitTerminal(CompileService &service, uint64_t id,
             std::chrono::milliseconds budget = std::chrono::seconds(120))
{
    const auto deadline = std::chrono::steady_clock::now() + budget;
    for (;;) {
        const auto info = service.status(id);
        if (!info) {
            ADD_FAILURE() << "job " << id << " vanished while waiting";
            return JobInfo{};
        }
        if (jobStateTerminal(info->state))
            return *info;
        if (std::chrono::steady_clock::now() > deadline) {
            ADD_FAILURE() << "job " << id << " stuck in "
                          << jobStateName(info->state);
            return *info;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

std::string
tempDir(const char *tag)
{
    std::string pattern =
        ::testing::TempDir() + "geyser_svc_" + tag + "_XXXXXX";
    EXPECT_NE(::mkdtemp(pattern.data()), nullptr);
    return pattern;
}

}  // namespace

TEST(JobQueue, OrdersByPriorityThenFifo)
{
    JobQueue queue;
    EXPECT_TRUE(queue.push(1, 0));
    EXPECT_TRUE(queue.push(2, 5));
    EXPECT_TRUE(queue.push(3, 0));
    EXPECT_TRUE(queue.push(4, 5));
    EXPECT_TRUE(queue.push(5, -1));
    EXPECT_EQ(queue.size(), 5u);
    const uint64_t expected[] = {2, 4, 1, 3, 5};
    for (const uint64_t id : expected) {
        const auto item = queue.tryPop();
        ASSERT_TRUE(item.has_value());
        EXPECT_EQ(item->id, id);
    }
    EXPECT_FALSE(queue.tryPop().has_value());
}

TEST(JobQueue, CloseDropsPendingAndRejectsPushes)
{
    JobQueue queue;
    queue.push(1, 0);
    queue.close();
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_FALSE(queue.tryPop().has_value());
    EXPECT_FALSE(queue.push(2, 0));
    EXPECT_TRUE(queue.closed());
}

TEST(CompileService, SubmitCompileFetch)
{
    ServiceConfig config;
    config.workers = 2;
    CompileService service(config);

    const uint64_t id = service.submit(specFor("multiplier-5"));
    const JobInfo info = waitTerminal(service, id);
    EXPECT_EQ(info.state, JobState::Done);
    EXPECT_GT(info.totalMs, 0.0);
    EXPECT_GT(info.u3Count + info.czCount + info.cczCount, 0);
    EXPECT_FALSE(info.cacheHit);

    const FetchResult fetch = service.result(id);
    EXPECT_EQ(fetch.status, FetchStatus::Ready);
    EXPECT_NE(fetch.payload.find("OPENQASM"), std::string::npos);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 1);
    EXPECT_EQ(stats.done, 1);
    EXPECT_EQ(stats.queued, 0);
    EXPECT_EQ(stats.running, 0);
    EXPECT_EQ(service.poolStats().exceptions, 0);
}

TEST(CompileService, TextFormatRendersNativeCircuit)
{
    ServiceConfig config;
    config.workers = 1;
    CompileService service(config);
    JobSpec spec = specFor("multiplier-5");
    spec.format = ResultFormat::Text;
    const uint64_t id = service.submit(spec);
    EXPECT_EQ(waitTerminal(service, id).state, JobState::Done);
    const FetchResult fetch = service.result(id);
    ASSERT_EQ(fetch.status, FetchStatus::Ready);
    EXPECT_EQ(fetch.payload.find("OPENQASM"), std::string::npos);
    EXPECT_FALSE(fetch.payload.empty());
}

TEST(CompileService, RejectsInvalidQasmAtTheBoundary)
{
    ServiceConfig config;
    config.workers = 0;  // Any accepted job would freeze in the queue.
    CompileService service(config);

    JobSpec garbage;
    garbage.qasm = "this is not qasm";
    EXPECT_THROW(service.submit(garbage), ParseError);

    JobSpec dupOperand;
    dupOperand.qasm =
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"
        "qreg q[2];\ncx q[0],q[0];\n";
    EXPECT_THROW(service.submit(dupOperand), ParseError);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 0);
    EXPECT_EQ(stats.rejected, 2);
    EXPECT_EQ(stats.queued, 0);  // Nothing entered the queue.
}

TEST(CompileService, RejectsOversizeQasm)
{
    ServiceConfig config;
    config.workers = 0;
    config.maxQasmBytes = 16;
    CompileService service(config);
    EXPECT_THROW(service.submit(specFor("multiplier-5")), ValidationError);
}

TEST(CompileService, StatusAndResultOfUnknownId)
{
    ServiceConfig config;
    config.workers = 0;
    CompileService service(config);
    EXPECT_FALSE(service.status(99).has_value());
    EXPECT_EQ(service.result(99).status, FetchStatus::NotFound);
    EXPECT_EQ(service.cancel(99), CancelOutcome::NotFound);
}

TEST(CompileService, ResultNotReadyWhileQueued)
{
    ServiceConfig config;
    config.workers = 0;
    CompileService service(config);
    const uint64_t id = service.submit(specFor("multiplier-5"));
    EXPECT_EQ(service.result(id).status, FetchStatus::NotReady);
    const auto info = service.status(id);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->state, JobState::Queued);
}

TEST(CompileService, CancelQueuedJobIsImmediate)
{
    ServiceConfig config;
    config.workers = 0;
    CompileService service(config);
    const uint64_t id = service.submit(specFor("multiplier-5"));
    EXPECT_EQ(service.cancel(id), CancelOutcome::Cancelled);

    const auto info = service.status(id);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->state, JobState::Cancelled);

    const FetchResult fetch = service.result(id);
    EXPECT_EQ(fetch.status, FetchStatus::Failed);
    EXPECT_EQ(fetch.info.errorKind, ErrorKind::Cancelled);

    EXPECT_EQ(service.cancel(id), CancelOutcome::AlreadyTerminal);
    EXPECT_EQ(service.stats().cancelled, 1);
}

TEST(CompileService, QueuedDeadlineExpiresLazily)
{
    ServiceConfig config;
    config.workers = 0;  // No worker will ever pick the job up.
    CompileService service(config);
    JobSpec spec = specFor("multiplier-5");
    spec.deadlineMs = 1;
    const uint64_t id = service.submit(spec);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

    const auto info = service.status(id);  // Polling observes the expiry.
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->state, JobState::Expired);
    EXPECT_EQ(info->errorKind, ErrorKind::Deadline);
    EXPECT_EQ(service.stats().expired, 1);
    EXPECT_EQ(service.result(id).status, FetchStatus::Failed);
}

TEST(CompileService, DeadlineExpiresMidCompile)
{
    ServiceConfig config;
    config.workers = 1;
    CompileService service(config);
    JobSpec spec = specFor("adder-4");  // ≈ 250 ms compile.
    spec.deadlineMs = 40;
    const uint64_t id = service.submit(spec);

    const JobInfo info = waitTerminal(service, id);
    EXPECT_EQ(info.state, JobState::Expired);
    EXPECT_EQ(info.errorKind, ErrorKind::Deadline);
    EXPECT_NE(info.errorMessage.find("deadline"), std::string::npos);
    EXPECT_EQ(service.stats().expired, 1);
    EXPECT_EQ(service.poolStats().exceptions, 0);
}

TEST(CompileService, CancelMidCompileUnwindsAtCheckpoint)
{
    ServiceConfig config;
    config.workers = 1;
    CompileService service(config);
    const uint64_t id = service.submit(specFor("adder-4"));

    // Wait for a worker to pick it up, then cancel mid-flight.
    const auto begin = std::chrono::steady_clock::now();
    while (true) {
        const auto info = service.status(id);
        ASSERT_TRUE(info.has_value());
        if (info->state != JobState::Queued)
            break;
        ASSERT_LT(std::chrono::steady_clock::now() - begin,
                  std::chrono::seconds(60));
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    service.cancel(id);

    const JobInfo info = waitTerminal(service, id);
    EXPECT_EQ(info.state, JobState::Cancelled);
    EXPECT_EQ(info.errorKind, ErrorKind::Cancelled);
    EXPECT_NE(info.errorMessage.find("cancelled"), std::string::npos);
    EXPECT_EQ(service.stats().cancelled, 1);
    EXPECT_EQ(service.poolStats().exceptions, 0);

    // The queue is not poisoned: the next job compiles normally.
    const uint64_t next = service.submit(specFor("multiplier-5"));
    EXPECT_EQ(waitTerminal(service, next).state, JobState::Done);
}

TEST(CompileService, WarmCacheResubmissionHitsWithoutRecompiling)
{
    const std::string dir = tempDir("warm");
    cache::CacheConfig cacheConfig;
    cacheConfig.dir = dir;
    cache::ResultCache cache(cacheConfig);
    ASSERT_TRUE(cache.enabled());

    ServiceConfig config;
    config.workers = 1;
    config.cache = &cache;
    CompileService service(config);

    JobSpec spec = specFor("multiplier-5");
    spec.useCache = true;
    const uint64_t cold = service.submit(spec);
    const JobInfo coldInfo = waitTerminal(service, cold);
    EXPECT_EQ(coldInfo.state, JobState::Done);
    EXPECT_FALSE(coldInfo.cacheHit);

    const uint64_t warm = service.submit(spec);
    const JobInfo warmInfo = waitTerminal(service, warm);
    EXPECT_EQ(warmInfo.state, JobState::Done);
    EXPECT_TRUE(warmInfo.cacheHit);

    // Identical payloads, one compile: the second run replayed. (The
    // cold compile may add block-spill misses on top of the pipeline
    // miss when the process-wide compose memo is cold, so assert the
    // floor, not an exact count.)
    EXPECT_EQ(service.result(cold).payload, service.result(warm).payload);
    const cache::CacheStats cs = cache.stats();
    EXPECT_GE(cs.misses, 1);
    EXPECT_GE(cs.hits, 1);
    EXPECT_EQ(cs.corrupt, 0);
    EXPECT_EQ(service.stats().cacheHits, 1);
}

TEST(CompileService, BackpressureThrowsUnavailable)
{
    ServiceConfig config;
    config.workers = 0;
    config.maxQueuedJobs = 1;
    CompileService service(config);
    service.submit(specFor("multiplier-5"));
    EXPECT_THROW(service.submit(specFor("multiplier-5")), UnavailableError);
    EXPECT_EQ(service.stats().rejected, 1);
}

TEST(CompileService, SubmitAfterShutdownRejected)
{
    ServiceConfig config;
    config.workers = 1;
    CompileService service(config);
    service.shutdown(/*drain=*/true);
    EXPECT_THROW(service.submit(specFor("multiplier-5")), UnavailableError);
    service.shutdown(/*drain=*/false);  // Idempotent.
}

TEST(CompileService, ShutdownDrainFinishesQueuedJobs)
{
    ServiceConfig config;
    config.workers = 1;
    CompileService service(config);
    const uint64_t a = service.submit(specFor("multiplier-5"));
    const uint64_t b = service.submit(specFor("advantage-9"));
    const uint64_t c = service.submit(specFor("multiplier-5"));
    service.shutdown(/*drain=*/true);
    for (const uint64_t id : {a, b, c}) {
        const auto info = service.status(id);
        ASSERT_TRUE(info.has_value());
        EXPECT_EQ(info->state, JobState::Done) << "job " << id;
    }
    EXPECT_EQ(service.stats().done, 3);
}

TEST(CompileService, AbortShutdownCancelsQueuedJobs)
{
    ServiceConfig config;
    config.workers = 0;
    CompileService service(config);
    const uint64_t a = service.submit(specFor("multiplier-5"));
    const uint64_t b = service.submit(specFor("multiplier-5"));
    service.shutdown(/*drain=*/false);
    for (const uint64_t id : {a, b}) {
        const auto info = service.status(id);
        ASSERT_TRUE(info.has_value());
        EXPECT_EQ(info->state, JobState::Cancelled);
        EXPECT_EQ(info->errorKind, ErrorKind::Cancelled);
    }
}

TEST(CompileService, RetentionDropsOldestTerminalRecords)
{
    ServiceConfig config;
    config.workers = 1;
    config.maxRetainedJobs = 2;
    CompileService service(config);
    uint64_t ids[3];
    for (uint64_t &id : ids) {
        id = service.submit(specFor("multiplier-5"));
        waitTerminal(service, id);
    }
    EXPECT_FALSE(service.status(ids[0]).has_value());  // Trimmed.
    EXPECT_TRUE(service.status(ids[1]).has_value());
    EXPECT_TRUE(service.status(ids[2]).has_value());
}

// ---------------------------------------------------------------------
// Socket round trips.
// ---------------------------------------------------------------------

namespace {

struct TcpHarness
{
    explicit TcpHarness(ServiceConfig serviceConfig = {},
                        ServerConfig serverConfig = {})
        : service(std::move(serviceConfig)),
          server(service, std::move(serverConfig))
    {
        server.start();
    }

    CompileService service;
    SocketServer server;
};

}  // namespace

TEST(SocketService, EndToEndOverTcp)
{
    ServiceConfig config;
    config.workers = 2;
    TcpHarness harness(config);
    ServiceClient client = ServiceClient::overTcp(harness.server.port());

    const Response pong = client.ping();
    ASSERT_TRUE(pong.ok);
    EXPECT_EQ(*pong.find("protocol"), std::to_string(kProtocolVersion));
    EXPECT_EQ(*pong.find("pipeline"), std::to_string(kPipelineVersion));
    EXPECT_EQ(*pong.find("workers"), "2");

    const Response accepted =
        client.submit(qasmFor("multiplier-5"), Technique::Geyser, 0, 0, false);
    ASSERT_TRUE(accepted.ok);
    EXPECT_EQ(*accepted.find("state"), "queued");
    const uint64_t id = std::stoull(*accepted.find("id"));

    const Response done = client.waitResult(id);
    ASSERT_TRUE(done.ok);
    EXPECT_EQ(*done.find("state"), "done");
    EXPECT_EQ(*done.find("cache_hit"), "0");
    EXPECT_NE(done.payload.find("OPENQASM"), std::string::npos);

    Request statsReq;
    statsReq.verb = Verb::Stats;
    const Response stats = client.roundTrip(statsReq);
    ASSERT_TRUE(stats.ok);
    EXPECT_EQ(*stats.find("submitted"), "1");
    EXPECT_EQ(*stats.find("done"), "1");
    EXPECT_EQ(*stats.find("pool_exceptions"), "0");
}

TEST(SocketService, EndToEndOverUnixSocket)
{
    const std::string path = tempDir("unix") + "/geyserd.sock";
    ServiceConfig serviceConfig;
    serviceConfig.workers = 1;
    ServerConfig serverConfig;
    serverConfig.unixPath = path;
    TcpHarness harness(serviceConfig, serverConfig);

    ServiceClient client = ServiceClient::overUnix(path);
    EXPECT_TRUE(client.ping().ok);
    const Response accepted =
        client.submit(qasmFor("advantage-9"), Technique::Baseline, 0, 0, false);
    ASSERT_TRUE(accepted.ok);
    const Response done =
        client.waitResult(std::stoull(*accepted.find("id")));
    ASSERT_TRUE(done.ok);
    EXPECT_EQ(*done.find("technique"), "baseline");
}

TEST(SocketService, InvalidQasmIsStructuredErrorAndConnectionSurvives)
{
    ServiceConfig config;
    config.workers = 0;
    TcpHarness harness(config);
    ServiceClient client = ServiceClient::overTcp(harness.server.port());

    const Response err = client.submit("not qasm", Technique::Geyser);
    ASSERT_FALSE(err.ok);
    EXPECT_EQ(*err.find("kind"), "parse");
    EXPECT_EQ(*err.find("code"), "400");
    EXPECT_FALSE(err.payload.empty());

    // Semantic errors keep the connection usable.
    EXPECT_TRUE(client.ping().ok);
}

TEST(SocketService, MalformedFrameRepliesThenClosesConnection)
{
    TcpHarness harness(ServiceConfig{});
    Fd fd = connectTcp(harness.server.port());
    writeAll(fd.get(), "geyser/1 frobnicate\n");
    SocketReader reader(fd.get());
    const auto line = reader.readLine(kMaxHeaderBytes);
    ASSERT_TRUE(line.has_value());
    const Frame<Response> frame = parseResponseHeader(*line);
    EXPECT_FALSE(frame.message.ok);
    EXPECT_EQ(*frame.message.find("kind"), "parse");
    EXPECT_EQ(*frame.message.find("code"), "400");
    reader.readExact(frame.payloadBytes + 1);
    // After a framing error the server hangs up: clean EOF.
    EXPECT_FALSE(reader.readLine(kMaxHeaderBytes).has_value());
}

TEST(SocketService, UnknownJobAndNotReadyOverWire)
{
    ServiceConfig config;
    config.workers = 0;
    TcpHarness harness(config);
    ServiceClient client = ServiceClient::overTcp(harness.server.port());

    const Response missing = client.result(12345);
    ASSERT_FALSE(missing.ok);
    EXPECT_EQ(*missing.find("kind"), "not_found");
    EXPECT_EQ(*missing.find("code"), "404");

    const Response accepted =
        client.submit(qasmFor("multiplier-5"), Technique::Geyser);
    ASSERT_TRUE(accepted.ok);
    const Response pending =
        client.result(std::stoull(*accepted.find("id")));
    ASSERT_FALSE(pending.ok);
    EXPECT_EQ(*pending.find("kind"), "not_ready");
    EXPECT_EQ(*pending.find("code"), "409");
}

TEST(SocketService, CancelOverWireReportsTerminalState)
{
    ServiceConfig config;
    config.workers = 0;
    TcpHarness harness(config);
    ServiceClient client = ServiceClient::overTcp(harness.server.port());

    const Response accepted =
        client.submit(qasmFor("multiplier-5"), Technique::Geyser);
    ASSERT_TRUE(accepted.ok);
    const uint64_t id = std::stoull(*accepted.find("id"));

    const Response cancelled = client.cancel(id);
    ASSERT_TRUE(cancelled.ok);
    EXPECT_EQ(*cancelled.find("delivered"), "1");
    EXPECT_EQ(*cancelled.find("state"), "cancelled");

    const Response fetch = client.result(id);
    ASSERT_FALSE(fetch.ok);
    EXPECT_EQ(*fetch.find("state"), "cancelled");
    EXPECT_EQ(*fetch.find("kind"), "cancelled");
    EXPECT_EQ(*fetch.find("code"), "410");
}

TEST(SocketService, DeadlineExpiryOverWire)
{
    ServiceConfig config;
    config.workers = 1;
    TcpHarness harness(config);
    ServiceClient client = ServiceClient::overTcp(harness.server.port());

    const Response accepted =
        client.submit(qasmFor("adder-4"), Technique::Geyser, 0,
                      /*deadlineMs=*/40, false);
    ASSERT_TRUE(accepted.ok);
    const Response expired =
        client.waitResult(std::stoull(*accepted.find("id")));
    ASSERT_FALSE(expired.ok);
    EXPECT_EQ(*expired.find("state"), "expired");
    EXPECT_EQ(*expired.find("kind"), "deadline");
    EXPECT_EQ(*expired.find("code"), "408");
    EXPECT_NE(expired.payload.find("deadline"), std::string::npos);
}

TEST(SocketService, ShutdownVerbSignalsOwnerAfterReply)
{
    std::promise<void> requested;
    auto requestedFuture = requested.get_future();
    ServerConfig serverConfig;
    serverConfig.onShutdownRequest = [&requested] { requested.set_value(); };

    ServiceConfig serviceConfig;
    serviceConfig.workers = 0;
    TcpHarness harness(serviceConfig, serverConfig);
    ServiceClient client = ServiceClient::overTcp(harness.server.port());

    Request shutdownReq;
    shutdownReq.verb = Verb::Shutdown;
    const Response ack = client.roundTrip(shutdownReq);
    ASSERT_TRUE(ack.ok);
    EXPECT_EQ(*ack.find("stopping"), "1");

    // The owner callback fires (after the reply), and the daemon-side
    // connection closes; the owner then tears the server down.
    ASSERT_EQ(requestedFuture.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    harness.server.stop();
    EXPECT_THROW(client.ping(), IoError);
}

TEST(SocketService, HandleRejectsOversizeSubmitInline)
{
    ServiceConfig config;
    config.workers = 0;
    config.maxQasmBytes = 8;
    TcpHarness harness(config);

    Request request;
    request.verb = Verb::Submit;
    request.qasm = "OPENQASM 2.0; more than eight bytes";
    bool closeConnection = false;
    const Response response =
        harness.server.handle(request, &closeConnection);
    ASSERT_FALSE(response.ok);
    EXPECT_EQ(*response.find("kind"), "validation");
    EXPECT_FALSE(closeConnection);
}

// ---- PR 7: observability ---------------------------------------------

TEST(ServiceObservability, ServiceMetricsCountWithTracingOff)
{
    obs::setEnabled(false);
    obs::reset();
    ServiceConfig config;
    config.workers = 2;
    CompileService service(config);

    const uint64_t ok = service.submit(specFor("multiplier-5"));
    EXPECT_EQ(waitTerminal(service, ok).state, JobState::Done);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.done, 1);
    // The always-on service domain agrees with ServiceStats even though
    // span tracing is off.
    EXPECT_EQ(obs::serviceCounter("service.submitted").value(),
              stats.submitted);
    EXPECT_EQ(obs::serviceCounter("service.done").value(), stats.done);
    {
        // Deterministic cancel: a workers=0 service freezes the job in
        // its queue, so the cancelled-while-queued counter must move.
        ServiceConfig frozen;
        frozen.workers = 0;
        CompileService held(frozen);
        const uint64_t doomed = held.submit(specFor("multiplier-5"));
        held.cancel(doomed);
        EXPECT_EQ(held.stats().cancelled, 1);
        EXPECT_EQ(obs::serviceCounter("service.cancelled").value(), 1);
        EXPECT_EQ(obs::serviceCounter("service.submitted").value(),
                  stats.submitted + 1);
    }
    EXPECT_EQ(obs::serviceGauge("service.queue_depth").value(), 0.0);
    EXPECT_EQ(obs::serviceGauge("service.in_flight").value(), 0.0);
    EXPECT_GE(obs::serviceHistogram("service.queue_wait_ms")
                  .snapshot().count, 1);
    EXPECT_GE(obs::serviceHistogram("service.compile_ms").snapshot().count,
              1);
    EXPECT_GE(obs::serviceHistogram("service.e2e_ms").snapshot().count, 1);
    // And the ring stayed quiet: no span collection without the flag.
    EXPECT_TRUE(obs::events().empty());
    EXPECT_EQ(obs::eventsDropped(), 0);
    // The live exposition carries the series the CI smoke scrapes.
    const std::string text = obs::prometheusText();
    EXPECT_NE(text.find("geyser_jobs_total{outcome=\"done\"} 1\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("geyser_compile_seconds_bucket"),
              std::string::npos);
    EXPECT_NE(text.find("geyser_queue_depth 0\n"), std::string::npos);
}

TEST(ServiceObservability, StatsAgreeWithObsRegistryWhenTracingOn)
{
    obs::setEnabled(true);
    obs::reset();
    ServiceConfig config;
    config.workers = 2;
    CompileService service(config);
    const uint64_t id = service.submit(specFor("multiplier-5"));
    EXPECT_EQ(waitTerminal(service, id).state, JobState::Done);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(obs::serviceCounter("service.done").value(), stats.done);
    EXPECT_EQ(obs::serviceCounter("service.submitted").value(),
              stats.submitted);
    obs::setEnabled(false);
    obs::reset();
}

TEST(ServiceObservability, MetricsVerbServesPrometheusText)
{
    obs::setEnabled(false);
    obs::reset();
    ServiceConfig config;
    config.workers = 2;
    TcpHarness harness(config);

    const uint64_t id = harness.service.submit(specFor("multiplier-5"));
    waitTerminal(harness.service, id);

    Request request;
    request.verb = Verb::Metrics;
    bool closeConnection = false;
    const Response response =
        harness.server.handle(request, &closeConnection);
    ASSERT_TRUE(response.ok);
    ASSERT_NE(response.find("format"), nullptr);
    EXPECT_EQ(*response.find("format"), "prometheus");
    ASSERT_TRUE(response.hasPayload);
    EXPECT_NE(response.payload.find("# TYPE geyser_jobs_total counter"),
              std::string::npos)
        << response.payload;
    EXPECT_NE(
        response.payload.find("geyser_jobs_total{outcome=\"done\"} 1\n"),
        std::string::npos);
    EXPECT_FALSE(closeConnection);
}

TEST(ServiceObservability, TraceVerbServesPerJobChromeTrace)
{
    obs::setEnabled(false);
    obs::reset();
    ServiceConfig config;
    config.workers = 2;
    TcpHarness harness(config);

    const uint64_t id = harness.service.submit(specFor("multiplier-5"));
    EXPECT_EQ(waitTerminal(harness.service, id).state, JobState::Done);

    Request request;
    request.verb = Verb::Trace;
    request.id = id;
    bool closeConnection = false;
    const Response response =
        harness.server.handle(request, &closeConnection);
    ASSERT_TRUE(response.ok) << response.payload;
    EXPECT_EQ(*response.find("id"), std::to_string(id));
    EXPECT_EQ(*response.find("dropped"), "0");
    ASSERT_TRUE(response.hasPayload);
    // The payload is loadable Chrome trace JSON with the job's spans.
    const obs::Json doc = obs::Json::parse(response.payload);
    const obs::Json *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool sawJob = false, sawCompile = false, sawCompose = false;
    for (const obs::Json &e : events->items()) {
        const std::string name =
            e.find("name") != nullptr ? e.find("name")->str() : "";
        sawJob = sawJob || name == "service.job";
        sawCompile = sawCompile || name == "compile";
        sawCompose = sawCompose || name == "compose.block";
    }
    EXPECT_TRUE(sawJob);
    EXPECT_TRUE(sawCompile);
    EXPECT_TRUE(sawCompose)
        << "parallel compose spans must join the job trace";

    // Unknown job ids are a structured 404, not an empty trace.
    Request missing;
    missing.verb = Verb::Trace;
    missing.id = id + 1000;
    const Response notFound =
        harness.server.handle(missing, &closeConnection);
    ASSERT_FALSE(notFound.ok);
    EXPECT_EQ(*notFound.find("kind"), "not_found");
}

TEST(ServiceObservability, AccessLogWritesOneJsonlLinePerTerminalJob)
{
    obs::setEnabled(false);
    obs::reset();
    const std::string dir = tempDir("accesslog");
    const std::string path = dir + "/access.jsonl";
    AccessLog accessLog(path);

    {
        ServiceConfig config;
        config.workers = 2;
        config.accessLog = &accessLog;
        CompileService service(config);
        JobSpec spec = specFor("multiplier-5");
        spec.peer = "tcp:127.0.0.1:5555";
        const uint64_t done = service.submit(spec);
        waitTerminal(service, done);
        service.shutdown(/*drain=*/true);
    }
    {
        // A workers=0 service freezes the job in the queue, so the
        // cancel deterministically takes the cancelled-while-queued
        // path (and must still produce an access-log line).
        ServiceConfig config;
        config.workers = 0;
        config.accessLog = &accessLog;
        CompileService service(config);
        const uint64_t cancelled = service.submit(specFor("multiplier-5"));
        service.cancel(cancelled);
        waitTerminal(service, cancelled);
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    int lines = 0;
    bool sawDone = false, sawCancelled = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ++lines;
        const obs::Json row = obs::Json::parse(line);
        ASSERT_NE(row.find("id"), nullptr) << line;
        ASSERT_NE(row.find("outcome"), nullptr) << line;
        ASSERT_NE(row.find("queue_us"), nullptr) << line;
        ASSERT_NE(row.find("cache_hit"), nullptr) << line;
        const std::string outcome = row.find("outcome")->str();
        if (outcome == "done") {
            sawDone = true;
            EXPECT_EQ(row.find("peer")->str(), "tcp:127.0.0.1:5555");
            EXPECT_GT(row.find("compile_us")->number(), 0.0);
            EXPECT_NE(row.find("total_pulses"), nullptr);
        } else if (outcome == "cancelled") {
            sawCancelled = true;
            EXPECT_EQ(row.find("peer")->str(), "local");
            EXPECT_NE(row.find("error_kind"), nullptr);
        }
    }
    EXPECT_EQ(lines, 2);
    EXPECT_TRUE(sawDone);
    EXPECT_TRUE(sawCancelled);
}

// ---- PR 10: fleet batch verb -----------------------------------------

namespace {

/** N VQE members sharing one skeleton (same structure, seeded angles). */
std::string
fleetPayloadFor(int members)
{
    std::string payload;
    for (int seed = 0; seed < members; ++seed) {
        if (seed > 0)
            payload += "%%\n";
        payload += circuitToQasm(
            vqeBenchmark(4, 1, static_cast<uint64_t>(seed)));
    }
    return payload;
}

}  // namespace

TEST(ServiceBatch, CompileBatchSharesOneSkeletonAcrossMembers)
{
    ServiceConfig config;
    config.workers = 1;
    CompileService service(config);

    BatchSpec spec;
    spec.payload = fleetPayloadFor(6);
    spec.useCache = false;
    const fleet::FleetReport report = service.compileBatch(spec);

    EXPECT_EQ(report.members, 6);
    EXPECT_EQ(report.jobs, 6);
    EXPECT_EQ(report.groups, 1);
    EXPECT_EQ(report.rebound + report.fallback, report.members);
    EXPECT_GE(report.rebound, 1);
    EXPECT_EQ(report.verifyFailures, 0);
    EXPECT_GE(report.verified, 1);
    ASSERT_EQ(report.rows.size(), 6u);
    for (const fleet::MemberRow &row : report.rows)
        EXPECT_GT(row.pulses, 0) << row.name;
}

TEST(ServiceBatch, CompileBatchRejectsAtTheBoundary)
{
    ServiceConfig config;
    config.workers = 0;
    config.maxBatchMembers = 2;
    CompileService service(config);

    BatchSpec empty;
    empty.payload = "\n%%\n\n";
    EXPECT_THROW(service.compileBatch(empty), ValidationError);

    BatchSpec garbage;
    garbage.payload = "this is not qasm";
    EXPECT_THROW(service.compileBatch(garbage), std::invalid_argument);

    BatchSpec tooMany;
    tooMany.payload = fleetPayloadFor(3);
    EXPECT_THROW(service.compileBatch(tooMany), ValidationError);

    EXPECT_EQ(service.stats().rejected, 3);

    service.shutdown(false);
    BatchSpec late;
    late.payload = fleetPayloadFor(1);
    EXPECT_THROW(service.compileBatch(late), UnavailableError);
}

TEST(SocketService, BatchOverWireCarriesReportJson)
{
    ServiceConfig config;
    config.workers = 1;
    TcpHarness harness(config);
    ServiceClient client = ServiceClient::overTcp(harness.server.port());

    Request request;
    request.verb = Verb::Batch;
    request.technique = Technique::Geyser;
    request.useCache = false;
    request.verifySample = 1;
    request.qasm = fleetPayloadFor(4);
    const Response response = client.roundTrip(request);
    ASSERT_TRUE(response.ok);
    EXPECT_EQ(*response.find("members"), "4");
    EXPECT_EQ(*response.find("jobs"), "4");
    EXPECT_EQ(*response.find("groups"), "1");
    EXPECT_EQ(*response.find("verify_failures"), "0");
    ASSERT_TRUE(response.hasPayload);
    EXPECT_NE(response.payload.find("geyser-fleet"), std::string::npos);
    EXPECT_NE(response.payload.find("\"members\""), std::string::npos);
    EXPECT_NE(response.payload.find("\"techniques\""), std::string::npos);

    // A batch error is structured, not a framing error: the connection
    // survives for the next request.
    Request bad = request;
    bad.qasm = "not qasm at all";
    const Response err = client.roundTrip(bad);
    ASSERT_FALSE(err.ok);
    EXPECT_EQ(*err.find("kind"), "parse");
    EXPECT_NE(err.payload.find("fleet member 0"), std::string::npos);
    EXPECT_TRUE(client.ping().ok);
}
