/**
 * @file
 * Wire-protocol unit tests: canonical encoding, strict parsing, and the
 * ParseError boundary for every malformed-header class the grammar
 * rejects. Golden byte transcripts live in test_protocol_golden.cpp.
 */
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "service/protocol.hpp"

using namespace geyser;
using namespace geyser::service;

namespace {

const char kGhz[] =
    "OPENQASM 2.0;\n"
    "include \"qelib1.inc\";\n"
    "qreg q[3];\n"
    "h q[0];\n"
    "cx q[0],q[1];\n"
    "cx q[1],q[2];\n";

}  // namespace

TEST(Protocol, SubmitRoundTripsThroughEncodeParse)
{
    Request request;
    request.verb = Verb::Submit;
    request.technique = Technique::OptiMap;
    request.format = ResultFormat::Text;
    request.priority = -3;
    request.deadlineMs = 2500;
    request.useCache = false;
    request.qasm = kGhz;

    const Request parsed = parseRequest(encodeRequest(request));
    EXPECT_EQ(parsed.verb, Verb::Submit);
    EXPECT_EQ(parsed.technique, Technique::OptiMap);
    EXPECT_EQ(parsed.format, ResultFormat::Text);
    EXPECT_EQ(parsed.priority, -3);
    EXPECT_EQ(parsed.deadlineMs, 2500);
    EXPECT_FALSE(parsed.useCache);
    EXPECT_EQ(parsed.qasm, kGhz);
}

TEST(Protocol, ControlVerbsRoundTrip)
{
    for (const Verb verb : {Verb::Status, Verb::Result, Verb::Cancel}) {
        Request request;
        request.verb = verb;
        request.id = 1234567890123ull;
        const Request parsed = parseRequest(encodeRequest(request));
        EXPECT_EQ(parsed.verb, verb);
        EXPECT_EQ(parsed.id, 1234567890123ull);
    }
    for (const Verb verb : {Verb::Ping, Verb::Stats, Verb::Shutdown}) {
        Request request;
        request.verb = verb;
        EXPECT_EQ(parseRequest(encodeRequest(request)).verb, verb);
    }
}

TEST(Protocol, SubmitEncodingIsCanonical)
{
    // Every field, fixed order, defaults included: identical requests
    // must be identical bytes (the cache and the goldens rely on it).
    Request request;
    request.verb = Verb::Submit;
    request.qasm = "x";
    EXPECT_EQ(encodeRequest(request),
              "geyser/1 submit technique=geyser format=qasm priority=0 "
              "deadline_ms=0 cache=on payload=1\nx\n");
}

TEST(Protocol, ResponseRoundTripsWithPayload)
{
    Response response;
    response.set("id", "7");
    response.set("state", "done");
    response.hasPayload = true;
    response.payload = "compiled bytes\nwith a newline";

    const Response parsed = parseResponse(encodeResponse(response));
    EXPECT_TRUE(parsed.ok);
    ASSERT_NE(parsed.find("id"), nullptr);
    EXPECT_EQ(*parsed.find("id"), "7");
    ASSERT_NE(parsed.find("state"), nullptr);
    EXPECT_EQ(*parsed.find("state"), "done");
    EXPECT_EQ(parsed.payload, "compiled bytes\nwith a newline");
    EXPECT_EQ(parsed.find("missing"), nullptr);
}

TEST(Protocol, ErrorResponseRoundTrips)
{
    const Response parsed = parseResponse(
        encodeResponse(Response::error("validation", 400, "bad circuit")));
    EXPECT_FALSE(parsed.ok);
    EXPECT_EQ(*parsed.find("kind"), "validation");
    EXPECT_EQ(*parsed.find("code"), "400");
    EXPECT_EQ(parsed.payload, "bad circuit");
}

TEST(Protocol, RejectsBadMagic)
{
    EXPECT_THROW(parseRequestHeader("nonsense ping"), ParseError);
    EXPECT_THROW(parseRequestHeader(""), ParseError);
}

TEST(Protocol, RejectsUnsupportedVersion)
{
    try {
        parseRequestHeader("geyser/2 ping");
        FAIL() << "version 2 accepted";
    } catch (const ParseError &e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
}

TEST(Protocol, RejectsUnknownVerb)
{
    EXPECT_THROW(parseRequestHeader("geyser/1 frobnicate"), ParseError);
    EXPECT_THROW(parseRequestHeader("geyser/1"), ParseError);
}

TEST(Protocol, RejectsUnknownAndMisplacedFields)
{
    EXPECT_THROW(parseRequestHeader("geyser/1 submit bogus=1 payload=0"),
                 ParseError);
    EXPECT_THROW(parseRequestHeader("geyser/1 status id=1 extra=2"),
                 ParseError);
    EXPECT_THROW(parseRequestHeader("geyser/1 ping x=1"), ParseError);
    // The PR-7 observability verbs follow the same strictness.
    EXPECT_THROW(parseRequestHeader("geyser/1 metrics format=json"),
                 ParseError);
    EXPECT_THROW(parseRequestHeader("geyser/1 metrics id=1"), ParseError);
    EXPECT_THROW(parseRequestHeader("geyser/1 trace id=1 extra=2"),
                 ParseError);
}

TEST(Protocol, RejectsDuplicateFields)
{
    EXPECT_THROW(
        parseRequestHeader("geyser/1 submit payload=1 payload=1"),
        ParseError);
}

TEST(Protocol, RejectsMissingRequiredFields)
{
    EXPECT_THROW(parseRequestHeader("geyser/1 submit technique=geyser"),
                 ParseError);  // No payload.
    EXPECT_THROW(parseRequestHeader("geyser/1 status"), ParseError);
    EXPECT_THROW(parseRequestHeader("geyser/1 result"), ParseError);
    EXPECT_THROW(parseRequestHeader("geyser/1 trace"), ParseError);
}

TEST(Protocol, RejectsBadNumbers)
{
    EXPECT_THROW(parseRequestHeader("geyser/1 status id=abc"), ParseError);
    EXPECT_THROW(parseRequestHeader("geyser/1 status id=-1"), ParseError);
    EXPECT_THROW(parseRequestHeader("geyser/1 status id=1x"), ParseError);
    EXPECT_THROW(
        parseRequestHeader("geyser/1 submit deadline_ms=-5 payload=0"),
        ParseError);
    EXPECT_THROW(
        parseRequestHeader("geyser/1 submit priority=9999999 payload=0"),
        ParseError);
}

TEST(Protocol, RejectsOversizePayloadDeclaration)
{
    const std::string line = "geyser/1 submit payload=" +
                             std::to_string(kMaxPayloadBytes + 1);
    EXPECT_THROW(parseRequestHeader(line), ParseError);
    // The cap itself is accepted.
    const std::string atCap =
        "geyser/1 submit payload=" + std::to_string(kMaxPayloadBytes);
    EXPECT_EQ(parseRequestHeader(atCap).payloadBytes, kMaxPayloadBytes);
}

TEST(Protocol, RejectsMalformedTokens)
{
    EXPECT_THROW(parseRequestHeader("geyser/1  ping"), ParseError);
    EXPECT_THROW(parseRequestHeader("geyser/1 ping "), ParseError);
    EXPECT_THROW(parseRequestHeader("geyser/1 status id"), ParseError);
    EXPECT_THROW(parseRequestHeader("geyser/1 status =1"), ParseError);
    EXPECT_THROW(parseRequestHeader("geyser/1 status Id=1"), ParseError);
    EXPECT_THROW(parseRequestHeader("geyser/1 ping\r"), ParseError);
}

TEST(Protocol, RejectsOversizeHeader)
{
    std::string line = "geyser/1 submit payload=0 ";
    line.append(kMaxHeaderBytes, 'x');
    EXPECT_THROW(parseRequestHeader(line), ParseError);
}

TEST(Protocol, RejectsBadTechniqueFormatCache)
{
    EXPECT_THROW(
        parseRequestHeader("geyser/1 submit technique=warp payload=0"),
        ParseError);
    EXPECT_THROW(
        parseRequestHeader("geyser/1 submit format=xml payload=0"),
        ParseError);
    EXPECT_THROW(
        parseRequestHeader("geyser/1 submit cache=maybe payload=0"),
        ParseError);
}

TEST(Protocol, RejectsFramePayloadMismatch)
{
    EXPECT_THROW(parseRequest("geyser/1 submit payload=5\nabc\n"),
                 ParseError);  // Promised 5, delivered 3.
    EXPECT_THROW(parseRequest("geyser/1 submit payload=3\nabc"),
                 ParseError);  // Missing terminator.
    EXPECT_THROW(parseRequest("geyser/1 ping\njunk"), ParseError);
    EXPECT_THROW(parseRequest("geyser/1 ping"), ParseError);  // No '\n'.
}

TEST(Protocol, PayloadMayContainAnything)
{
    // Length-prefixed framing: payload bytes are never interpreted.
    Request request;
    request.verb = Verb::Submit;
    request.qasm = "geyser/1 shutdown\n\r\n=== binary \x01\x02";
    EXPECT_EQ(parseRequest(encodeRequest(request)).qasm, request.qasm);
}

TEST(Protocol, ErrResponseRequiresKindAndCode)
{
    EXPECT_THROW(parseResponse("geyser/1 err\n"), ParseError);
    EXPECT_THROW(parseResponse("geyser/1 err kind=parse\n"), ParseError);
    EXPECT_THROW(parseResponse("geyser/1 err kind=parse code=9999\n"),
                 ParseError);
    EXPECT_NO_THROW(parseResponse("geyser/1 err kind=parse code=400\n"));
}

TEST(Protocol, EncodeResponseRejectsUnencodableFields)
{
    Response response;
    response.set("key", "has space");
    EXPECT_THROW(encodeResponse(response), InternalError);
    Response reserved;
    reserved.set("payload", "7");
    EXPECT_THROW(encodeResponse(reserved), InternalError);
}

TEST(Protocol, WireErrorMappingCoversTaxonomy)
{
    EXPECT_STREQ(wireErrorKind(ErrorKind::Parse), "parse");
    EXPECT_STREQ(wireErrorKind(ErrorKind::Validation), "validation");
    EXPECT_STREQ(wireErrorKind(ErrorKind::Cancelled), "cancelled");
    EXPECT_STREQ(wireErrorKind(ErrorKind::Deadline), "deadline");
    EXPECT_EQ(wireErrorCode(ErrorKind::Parse), 400);
    EXPECT_EQ(wireErrorCode(ErrorKind::Deadline), 408);
    EXPECT_EQ(wireErrorCode(ErrorKind::Cancelled), 410);
    EXPECT_EQ(wireErrorCode(ErrorKind::Internal), 500);
}
