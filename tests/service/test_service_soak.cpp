/**
 * @file
 * Concurrency soak tests for the compile service (run under the
 * Sanitize preset in CI): N socket clients hammering one daemon with a
 * seeded mix of duplicate and distinct jobs, asserting single-flight
 * deduplication through the persistent cache, no lost or duplicated
 * completions, a cancel storm that leaves the queue healthy, and a
 * clean shutdown with jobs still in flight.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "algos/suite.hpp"
#include "cache/result_cache.hpp"
#include "common/error.hpp"
#include "io/serialize.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

using namespace geyser;
using namespace geyser::service;

namespace {

std::string
qasmFor(const std::string &benchmark)
{
    return circuitToQasm(benchmarkByName(benchmark).make());
}

std::string
tempDir(const char *tag)
{
    std::string pattern =
        ::testing::TempDir() + "geyser_soak_" + tag + "_XXXXXX";
    EXPECT_NE(::mkdtemp(pattern.data()), nullptr);
    return pattern;
}

JobInfo
waitTerminal(CompileService &service, uint64_t id)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::minutes(5);
    for (;;) {
        const auto info = service.status(id);
        if (!info) {
            ADD_FAILURE() << "job " << id << " vanished";
            return JobInfo{};
        }
        if (jobStateTerminal(info->state))
            return *info;
        if (std::chrono::steady_clock::now() > deadline) {
            ADD_FAILURE() << "job " << id << " stuck";
            return *info;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
}

}  // namespace

TEST(ServiceSoak, ConcurrentClientsDedupeThroughSingleFlight)
{
    const std::string dir = tempDir("dedup");
    cache::CacheConfig cacheConfig;
    cacheConfig.dir = dir;
    cache::ResultCache cache(cacheConfig);
    ASSERT_TRUE(cache.enabled());

    ServiceConfig serviceConfig;
    serviceConfig.workers = 4;
    serviceConfig.cache = &cache;
    CompileService service(serviceConfig);
    SocketServer server(service, ServerConfig{});
    server.start();

    // Three distinct programs; every other submission is a duplicate.
    const std::vector<std::string> programs = {
        qasmFor("multiplier-5"), qasmFor("advantage-9"), qasmFor("adder-4")};
    constexpr int kThreads = 6;
    constexpr int kJobsPerThread = 8;

    std::atomic<int> failures{0};
    std::mutex resultMutex;
    std::map<uint64_t, std::string> completions;  // id → state (once).

    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
            // Seeded per-thread mix: deterministic, but interleaved
            // differently on every thread.
            std::mt19937 rng(0xC0FFEEu + static_cast<unsigned>(t));
            try {
                ServiceClient client = ServiceClient::overTcp(server.port());
                std::vector<uint64_t> ids;
                for (int j = 0; j < kJobsPerThread; ++j) {
                    const auto &program = programs[rng() % programs.size()];
                    const int priority = static_cast<int>(rng() % 3);
                    const Response accepted = client.submit(
                        program, Technique::Geyser, priority, 0, true);
                    if (!accepted.ok) {
                        ++failures;
                        continue;
                    }
                    ids.push_back(std::stoull(*accepted.find("id")));
                }
                for (const uint64_t id : ids) {
                    const Response done = client.waitResult(id);
                    std::lock_guard<std::mutex> lock(resultMutex);
                    const bool fresh =
                        completions
                            .emplace(id, done.ok ? *done.find("state")
                                                 : "error")
                            .second;
                    if (!fresh || !done.ok ||
                        done.payload.find("OPENQASM") == std::string::npos)
                        ++failures;
                }
            } catch (const std::exception &e) {
                ADD_FAILURE() << "client thread " << t << ": " << e.what();
                ++failures;
            }
        });
    }
    for (auto &c : clients)
        c.join();
    server.stop();

    constexpr int kTotal = kThreads * kJobsPerThread;
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(completions.size(), static_cast<size_t>(kTotal));

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, kTotal);
    EXPECT_EQ(stats.done, kTotal);  // No lost or failed completions.
    EXPECT_EQ(stats.failed + stats.cancelled + stats.expired, 0);

    // Single-flight dedup: each distinct program compiled exactly once;
    // every other job replayed from the cache (as a plain hit or after
    // waiting out another job's flight).
    EXPECT_EQ(stats.done - stats.cacheHits,
              static_cast<long>(programs.size()));
    const cache::CacheStats cs = cache.stats();
    EXPECT_EQ(cs.storeFailures, 0);
    EXPECT_EQ(cs.corrupt, 0);
    EXPECT_GE(cs.hits, static_cast<long>(kTotal - programs.size()));
    EXPECT_EQ(service.poolStats().exceptions, 0);
}

TEST(ServiceSoak, CancelStormLeavesQueueHealthy)
{
    ServiceConfig config;
    config.workers = 1;  // Backlog guarantees cancels land while queued.
    CompileService service(config);

    const std::string program = qasmFor("multiplier-5");
    constexpr int kJobs = 30;
    std::vector<uint64_t> ids;
    ids.reserve(kJobs);
    for (int j = 0; j < kJobs; ++j) {
        JobSpec spec;
        spec.qasm = program;
        spec.useCache = false;
        ids.push_back(service.submit(spec));
    }

    // Storm: two threads cancelling interleaved halves while the worker
    // drains the queue underneath them.
    std::thread even([&] {
        for (size_t i = 0; i < ids.size(); i += 2)
            service.cancel(ids[i]);
    });
    std::thread odd([&] {
        for (size_t i = 1; i < ids.size(); i += 2)
            service.cancel(ids[i]);
    });
    even.join();
    odd.join();

    long done = 0, cancelled = 0;
    for (const uint64_t id : ids) {
        const JobInfo info = waitTerminal(service, id);
        EXPECT_TRUE(jobStateTerminal(info.state)) << "job " << id;
        EXPECT_NE(info.state, JobState::Failed) << "job " << id;
        done += info.state == JobState::Done;
        cancelled += info.state == JobState::Cancelled;
    }
    EXPECT_EQ(done + cancelled, kJobs);
    EXPECT_GT(cancelled, 0);  // The storm actually landed.

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.done, done);
    EXPECT_EQ(stats.cancelled, cancelled);
    EXPECT_EQ(stats.failed, 0);
    EXPECT_EQ(service.poolStats().exceptions, 0);

    // The queue is not poisoned: a fresh job still compiles.
    JobSpec fresh;
    fresh.qasm = program;
    fresh.useCache = false;
    EXPECT_EQ(waitTerminal(service, service.submit(fresh)).state,
              JobState::Done);
}

TEST(ServiceSoak, ShutdownWithJobsInFlightIsClean)
{
    ServiceConfig config;
    config.workers = 2;
    CompileService service(config);

    std::vector<uint64_t> ids;
    for (int j = 0; j < 10; ++j) {
        JobSpec spec;
        spec.qasm = qasmFor(j == 0 ? "adder-4" : "multiplier-5");
        spec.useCache = false;
        ids.push_back(service.submit(spec));
    }
    service.shutdown(/*drain=*/false);  // Jobs still queued and running.

    for (const uint64_t id : ids) {
        const auto info = service.status(id);
        ASSERT_TRUE(info.has_value()) << "job " << id;
        EXPECT_TRUE(jobStateTerminal(info->state))
            << "job " << id << " left in " << jobStateName(info->state);
        EXPECT_NE(info->state, JobState::Failed);
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.done + stats.cancelled + stats.expired,
              static_cast<long>(ids.size()));
    EXPECT_EQ(service.poolStats().exceptions, 0);
}

TEST(ServiceSoak, DestructorAbortsInFlightJobs)
{
    const std::string program = qasmFor("adder-4");
    const auto begin = std::chrono::steady_clock::now();
    {
        ServiceConfig config;
        config.workers = 1;
        CompileService service(config);
        for (int j = 0; j < 4; ++j) {
            JobSpec spec;
            spec.qasm = program;
            spec.useCache = false;
            service.submit(spec);
        }
        // ~1 s of queued compile work dies with the service.
    }
    // Cancellation unwinds at the next checkpoint, not after the queue
    // drains: teardown must be far cheaper than the queued work.
    EXPECT_LT(std::chrono::steady_clock::now() - begin,
              std::chrono::seconds(60));
}
