/**
 * @file
 * Rydberg-crosstalk channel tests: zone atoms get dephased during
 * multi-qubit gates; isolated gates and topology-less runs see nothing.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "metrics/metrics.hpp"
#include "sim/trajectory.hpp"

namespace geyser {
namespace {

NoiseModel
crosstalkOnly(double rate)
{
    NoiseModel nm{0.0, 0.0, false, 0.0, rate};
    return nm;
}

TEST(Crosstalk, RejectedWithoutTopology)
{
    // A crosstalk-enabled model without a topology used to silently
    // downgrade to no crosstalk — a service caller got a confident,
    // wrong TVD. It is a validation error now.
    Circuit c(2);
    c.h(0);
    c.cz(0, 1);
    c.h(0);
    TrajectoryConfig cfg{500, 3, false, nullptr};
    EXPECT_THROW(noisyDistribution(c, crosstalkOnly(0.5), cfg),
                 ValidationError);
    // With a topology the same request is fine.
    const auto topo = Topology::makeTriangular(1, 2);
    cfg.topology = &topo;
    const auto noisy = noisyDistribution(c, crosstalkOnly(0.5), cfg);
    EXPECT_EQ(noisy.size(), size_t{4});
}

TEST(Crosstalk, DephasesZoneAtoms)
{
    // Atom 2 sits in the zone of the CZ(0, 1); its superposition gets
    // dephased during the gate.
    const auto topo = Topology::makeTriangular(2, 2);
    Circuit c(4);
    c.h(2);
    c.cz(0, 1);
    c.h(2);
    // Ideal output: qubit 2 returns to |0> deterministically.
    TrajectoryConfig cfg{4000, 7, true, &topo};
    const auto noisy = noisyDistribution(c, crosstalkOnly(0.5), cfg);
    double q2one = 0.0;
    for (size_t i = 0; i < noisy.size(); ++i)
        if (i & 4)
            q2one += noisy[i];
    // Full dephasing (p = 0.5) makes qubit 2 uniform: p(1) = 0.5.
    EXPECT_NEAR(q2one, 0.5, 0.05);
}

TEST(Crosstalk, DoesNotTouchAtomsOutsideZone)
{
    const auto topo = Topology::makeTriangular(2, 4);
    const auto zone = topo.restrictionZone({0, 1});
    ASSERT_TRUE(std::find(zone.begin(), zone.end(), 3) == zone.end());
    Circuit c(topo.numAtoms());
    c.h(3);  // Atom 3 is two sites away: outside the zone of cz(0, 1).
    c.cz(0, 1);
    c.h(3);
    TrajectoryConfig cfg{200, 5, false, &topo};
    const auto noisy = noisyDistribution(c, crosstalkOnly(0.5), cfg);
    double far_one = 0.0;
    for (size_t i = 0; i < noisy.size(); ++i)
        if (i & (size_t{1} << 3))
            far_one += noisy[i];
    EXPECT_NEAR(far_one, 0.0, 1e-12);
}

TEST(Crosstalk, SingleQubitGatesCreateNoZoneErrors)
{
    const auto topo = Topology::makeTriangular(2, 2);
    Circuit c(4);
    c.h(0);
    c.u3(1, 0.5, 0.5, 0.5);
    c.h(0);
    TrajectoryConfig cfg{300, 11, false, &topo};
    const auto noisy = noisyDistribution(c, crosstalkOnly(0.9), cfg);
    const auto ideal = idealDistribution(c);
    EXPECT_NEAR(totalVariationDistance(noisy, ideal), 0.0, 1e-12);
}

}  // namespace
}  // namespace geyser
