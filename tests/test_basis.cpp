/**
 * @file
 * Basis-lowering tests: every lowering preserves the circuit unitary (up
 * to global phase) and emits only {U3, CZ}; the CCZ lowering matches the
 * paper's Fig 11 pulse accounting after fusion.
 */
#include <gtest/gtest.h>

#include "sim/unitary_sim.hpp"
#include "transpile/basis.hpp"
#include "transpile/passes.hpp"

namespace geyser {
namespace {

void
expectLoweringEquivalent(const Circuit &logical, double tol = 1e-9)
{
    const Circuit phys = decomposeToBasis(logical);
    EXPECT_TRUE(phys.isPhysical());
    EXPECT_EQ(phys.countKind(GateKind::CCZ), 0)
        << "lowering must not emit CCZ (paper Sec 3.2)";
    EXPECT_LT(circuitHsd(logical, phys), tol) << logical.toString();
}

TEST(Basis, OneQubitGatesBecomeSingleU3)
{
    Circuit c(1);
    c.h(0);
    const Circuit phys = decomposeToBasis(c);
    EXPECT_EQ(phys.size(), 1u);
    EXPECT_EQ(phys.gates()[0].kind(), GateKind::U3);
    expectLoweringEquivalent(c);
}

TEST(Basis, CxLowering)
{
    Circuit c(2);
    c.cx(0, 1);
    const Circuit phys = decomposeToBasis(c);
    EXPECT_EQ(phys.countKind(GateKind::CZ), 1);
    EXPECT_EQ(phys.countKind(GateKind::U3), 2);
    expectLoweringEquivalent(c);
}

TEST(Basis, CxReversedOperands)
{
    Circuit c(2);
    c.cx(1, 0);
    expectLoweringEquivalent(c);
}

TEST(Basis, CpLowering)
{
    for (const double lambda : {0.3, -1.2, kPi}) {
        Circuit c(2);
        c.cp(0, 1, lambda);
        expectLoweringEquivalent(c);
    }
}

TEST(Basis, TwoQubitRotationLowerings)
{
    for (const double theta : {0.4, -0.9, 2.7}) {
        Circuit zz(2), xx(2), yy(2);
        zz.rzz(0, 1, theta);
        xx.rxx(0, 1, theta);
        yy.ryy(0, 1, theta);
        expectLoweringEquivalent(zz);
        expectLoweringEquivalent(xx);
        expectLoweringEquivalent(yy);
    }
}

TEST(Basis, SwapLowering)
{
    Circuit c(2);
    c.swap(0, 1);
    const Circuit phys = decomposeToBasis(c);
    EXPECT_EQ(phys.countKind(GateKind::CZ), 3);
    expectLoweringEquivalent(c);
}

TEST(Basis, ToffoliLowering)
{
    Circuit c(3);
    c.ccx(0, 1, 2);
    expectLoweringEquivalent(c);
}

TEST(Basis, CczLoweringMatchesUnitaryExactly)
{
    Circuit c(3);
    c.ccz(0, 1, 2);
    const Circuit phys = decomposeToBasis(c);
    EXPECT_EQ(phys.countKind(GateKind::CZ), 6);
    expectLoweringEquivalent(c);
}

TEST(Basis, Fig11CczCostsAbout26PulsesAfterFusion)
{
    // Paper Fig 11: decomposed CCZ = 6 CZ + 8 U3 = 18 + 8 = 26 pulses.
    // Our textbook CX orientations leave one extra un-mergeable U3
    // (9 instead of 8 -> 27 pulses), still 5x the native CCZ's 5 pulses.
    Circuit c(3);
    c.ccz(0, 1, 2);
    Circuit phys = decomposeToBasis(c);
    fuseU3Pass(phys, true);
    EXPECT_EQ(phys.countKind(GateKind::CZ), 6);
    EXPECT_EQ(phys.countKind(GateKind::U3), 9);
    EXPECT_EQ(phys.totalPulses(), 27);
    // Still equivalent after fusion.
    Circuit logical(3);
    logical.ccz(0, 1, 2);
    EXPECT_LT(circuitHsd(logical, phys), 1e-9);
}

TEST(Basis, MixedCircuitLowering)
{
    Circuit c(3);
    c.h(0);
    c.t(1);
    c.cx(0, 1);
    c.rzz(1, 2, 0.8);
    c.ccx(0, 1, 2);
    c.rx(2, -0.4);
    expectLoweringEquivalent(c);
}

TEST(Basis, U3FromGateThrowsOnMultiQubit)
{
    EXPECT_THROW(u3FromGate(Gate(GateKind::CZ, 0, 1)), std::invalid_argument);
}

TEST(Basis, LoweringIsIdempotent)
{
    Circuit c(3);
    c.ccx(0, 1, 2);
    const Circuit once = decomposeToBasis(c);
    const Circuit twice = decomposeToBasis(once);
    EXPECT_EQ(once.size(), twice.size());
}

}  // namespace
}  // namespace geyser
