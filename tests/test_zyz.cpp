/**
 * @file
 * One-qubit resynthesis tests: U3 extraction from arbitrary 2x2
 * unitaries, including the degenerate theta = 0 and theta = pi branches.
 * Parameterized sweep over a grid of angles (property-style).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "circuit/gate.hpp"
#include "transpile/zyz.hpp"

namespace geyser {
namespace {

void
expectRecovers(const Matrix &u)
{
    const U3Params p = u3FromMatrix(u);
    const Matrix rebuilt =
        u3Matrix(p.theta, p.phi, p.lambda) * std::exp(kI * p.phase);
    EXPECT_LT(rebuilt.maxAbsDiff(u), 1e-10) << u.toString();
}

TEST(Zyz, RecoversNamedGates)
{
    for (const GateKind kind :
         {GateKind::I, GateKind::X, GateKind::Y, GateKind::Z, GateKind::H,
          GateKind::S, GateKind::SDG, GateKind::T, GateKind::TDG})
        expectRecovers(Gate(kind, 0).matrix());
}

TEST(Zyz, RecoversRotationGates)
{
    for (const double angle : {-2.5, -0.3, 0.0, 0.7, 3.1}) {
        expectRecovers(Gate(GateKind::RX, 0, angle).matrix());
        expectRecovers(Gate(GateKind::RY, 0, angle).matrix());
        expectRecovers(Gate(GateKind::RZ, 0, angle).matrix());
        expectRecovers(Gate(GateKind::P, 0, angle).matrix());
    }
}

TEST(Zyz, RejectsNonUnitary)
{
    Matrix bad{{1.0, 1.0}, {0.0, 1.0}};
    EXPECT_THROW(u3FromMatrix(bad), std::invalid_argument);
    EXPECT_THROW(u3FromMatrix(Matrix::identity(3)), std::invalid_argument);
}

TEST(Zyz, IdentityDetection)
{
    EXPECT_TRUE(isIdentityUpToPhase(Matrix::identity(2)));
    EXPECT_TRUE(isIdentityUpToPhase(Matrix::identity(2) * std::exp(kI * 1.3)));
    EXPECT_FALSE(isIdentityUpToPhase(Gate(GateKind::X, 0).matrix()));
    EXPECT_FALSE(isIdentityUpToPhase(Gate(GateKind::Z, 0).matrix()));
}

TEST(Zyz, DiagonalDetection)
{
    EXPECT_TRUE(isDiagonal(Gate(GateKind::Z, 0).matrix()));
    EXPECT_TRUE(isDiagonal(Gate(GateKind::T, 0).matrix()));
    EXPECT_TRUE(isDiagonal(Gate(GateKind::RZ, 0, 0.7).matrix()));
    EXPECT_FALSE(isDiagonal(Gate(GateKind::H, 0).matrix()));
    EXPECT_FALSE(isDiagonal(Gate(GateKind::RX, 0, 0.1).matrix()));
}

/** Property sweep: every U3(theta, phi, lambda) round-trips. */
class ZyzSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>>
{
};

TEST_P(ZyzSweep, RoundTripsArbitraryU3)
{
    const auto [theta, phi, lambda] = GetParam();
    const Matrix u = u3Matrix(theta, phi, lambda);
    expectRecovers(u);
    // And the product of two such gates round-trips too.
    expectRecovers(u * u3Matrix(lambda, theta, phi));
}

INSTANTIATE_TEST_SUITE_P(
    AngleGrid, ZyzSweep,
    ::testing::Combine(::testing::Values(0.0, 0.9, kPi / 2, kPi - 1e-9, kPi,
                                         2.1, 2 * kPi),
                       ::testing::Values(0.0, 1.3, -2.2),
                       ::testing::Values(0.0, 0.4, 5.9)));

}  // namespace
}  // namespace geyser
