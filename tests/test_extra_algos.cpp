/**
 * @file
 * Functional tests for the extra algorithm generators (GHZ,
 * Bernstein-Vazirani, Grover) including end-to-end Geyser compilation.
 */
#include <gtest/gtest.h>

#include "algos/algos.hpp"
#include "geyser/pipeline.hpp"
#include "sim/statevector.hpp"

namespace geyser {
namespace {

TEST(Ghz, PreparesCatState)
{
    for (const int n : {2, 4, 6}) {
        const auto p = idealDistribution(ghzCircuit(n));
        EXPECT_NEAR(p[0], 0.5, 1e-12) << n;
        EXPECT_NEAR(p[p.size() - 1], 0.5, 1e-12) << n;
    }
    EXPECT_THROW(ghzCircuit(1), std::invalid_argument);
}

class BvSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(BvSweep, RecoversSecretDeterministically)
{
    const uint64_t secret = GetParam();
    const int bits = 4;
    const auto p = idealDistribution(bernsteinVazirani(bits, secret));
    // Marginal over the ancilla: the query register must equal secret.
    double mass = 0.0;
    for (size_t i = 0; i < p.size(); ++i)
        if ((i & ((size_t{1} << bits) - 1)) == secret)
            mass += p[i];
    EXPECT_NEAR(mass, 1.0, 1e-10) << secret;
}

INSTANTIATE_TEST_SUITE_P(Secrets, BvSweep,
                         ::testing::Values(0u, 1u, 5u, 10u, 15u));

TEST(Grover, TwoQubitSingleIterationIsExact)
{
    // For N = 4 one Grover iteration finds the marked item exactly.
    for (uint64_t marked = 0; marked < 4; ++marked) {
        const auto p = idealDistribution(groverSearch(2, marked, 1));
        EXPECT_NEAR(p[marked], 1.0, 1e-10) << marked;
    }
}

TEST(Grover, ThreeQubitTwoIterationsBoostMarkedItem)
{
    // For N = 8, two iterations give ~94.5% success.
    const auto p = idealDistribution(groverSearch(3, 5, 2));
    EXPECT_GT(p[5], 0.9);
    double rest = 0.0;
    for (size_t i = 0; i < p.size(); ++i)
        if (i != 5)
            rest += p[i];
    EXPECT_LT(rest, 0.1);
}

TEST(Grover, ValidatesArguments)
{
    EXPECT_THROW(groverSearch(4, 0, 1), std::invalid_argument);
    EXPECT_THROW(groverSearch(3, 8, 1), std::invalid_argument);
}

TEST(Grover, GeyserCompilationKeepsSuccessProbability)
{
    // Grover's oracle is literally a CCZ: the Geyser-compiled circuit
    // must preserve the ideal output and use few pulses.
    const Circuit logical = groverSearch(3, 3, 2);
    const auto gey = compileGeyser(logical);
    EXPECT_LT(idealTvd(gey), 1e-2);
    const auto base = compileBaseline(logical);
    EXPECT_LT(gey.stats.totalPulses, base.stats.totalPulses);
}

}  // namespace
}  // namespace geyser
