/**
 * @file
 * Routing tests: layouts, SWAP insertion, adjacency of the routed
 * circuit, and unitary preservation through the layout permutation.
 */
#include <gtest/gtest.h>

#include "sim/statevector.hpp"
#include "transpile/basis.hpp"
#include "transpile/router.hpp"

namespace geyser {
namespace {

/**
 * Routed-circuit equivalence: applying the routed circuit to |0...0>
 * and reading logical qubit q at atom finalLayout[q] must match the
 * original circuit's output on qubit q (for every basis amplitude).
 */
void
expectRoutedEquivalent(const Circuit &logical, const RoutedCircuit &routed,
                       int num_atoms)
{
    StateVector orig(logical.numQubits());
    orig.apply(logical);
    StateVector mapped(num_atoms);
    mapped.apply(routed.circuit);

    const auto po = orig.probabilities();
    const auto pm = mapped.probabilities();
    // Project the atom distribution to logical bits.
    Distribution projected(po.size(), 0.0);
    for (size_t y = 0; y < pm.size(); ++y) {
        size_t x = 0;
        for (int q = 0; q < logical.numQubits(); ++q)
            if (y & (size_t{1} << routed.finalLayout[static_cast<size_t>(q)]))
                x |= size_t{1} << q;
        projected[x] += pm[y];
    }
    for (size_t i = 0; i < po.size(); ++i)
        EXPECT_NEAR(po[i], projected[i], 1e-9);
}

TEST(Router, AdjacentGatesNeedNoSwaps)
{
    const auto topo = Topology::makeTriangular(2, 2);
    Circuit c(4);
    c.u3(0, 1, 1, 1);
    c.cz(0, 1);
    const auto routed = route(c, topo);
    EXPECT_EQ(routed.swapsInserted, 0);
    EXPECT_EQ(routed.circuit.size(), 2u);
}

TEST(Router, RequiresPhysicalInput)
{
    const auto topo = Topology::makeTriangular(2, 2);
    Circuit c(2);
    c.h(0);
    EXPECT_THROW(route(c, topo), std::invalid_argument);
}

TEST(Router, RejectsTooManyQubits)
{
    const auto topo = Topology::makeTriangular(2, 2);
    Circuit c(5);
    c.u3(4, 0, 0, 0);
    EXPECT_THROW(route(c, topo), std::invalid_argument);
}

TEST(Router, InsertsSwapsForDistantPair)
{
    const auto topo = Topology::makeSquare(1, 4, false);
    // A line topology has no triangles but routing works on any graph.
    Circuit c(4);
    c.cz(0, 3);
    const auto routed = route(decomposeToBasis(c), topo);
    EXPECT_GT(routed.swapsInserted, 0);
    // Every CZ in the routed circuit acts on adjacent atoms.
    for (const auto &g : routed.circuit.gates())
        if (g.kind() == GateKind::CZ)
            EXPECT_TRUE(topo.areAdjacent(g.qubit(0), g.qubit(1)));
}

TEST(Router, RoutedCircuitEquivalentUnderLayout)
{
    const auto topo = Topology::makeSquare(2, 3, false);
    Circuit c(5);
    c.h(0);
    c.cx(0, 4);
    c.cx(1, 3);
    c.cx(2, 0);
    const auto routed = route(decomposeToBasis(c), topo);
    expectRoutedEquivalent(c, routed, topo.numAtoms());
}

TEST(Router, LayoutTracksMovedQubits)
{
    const auto topo = Topology::makeSquare(1, 3, false);
    Circuit c(3);
    c.cz(0, 2);
    const auto routed = route(c, topo);
    EXPECT_GT(routed.swapsInserted, 0);
    // The moved logical qubit's final atom differs from its initial one.
    bool moved = false;
    for (size_t q = 0; q < routed.finalLayout.size(); ++q)
        if (routed.finalLayout[q] != routed.initialLayout[q])
            moved = true;
    EXPECT_TRUE(moved);
}

TEST(Router, TriangularTopologyDenseCircuit)
{
    const auto topo = Topology::forQubits(9);
    Circuit c(9);
    for (int i = 0; i < 9; ++i)
        for (int j = i + 1; j < 9; j += 2)
            c.cx(i, j);
    const auto routed = route(decomposeToBasis(c), topo);
    for (const auto &g : routed.circuit.gates())
        if (g.numQubits() == 2)
            EXPECT_TRUE(topo.areAdjacent(g.qubit(0), g.qubit(1)));
    expectRoutedEquivalent(c, routed, topo.numAtoms());
}

}  // namespace
}  // namespace geyser
