/**
 * @file
 * Optimizer tests: Nelder-Mead local convergence and dual-annealing
 * global search on standard test functions.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/types.hpp"
#include "opt/dual_annealing.hpp"
#include "opt/nelder_mead.hpp"

namespace geyser {
namespace {

double
sphere(const std::vector<double> &x)
{
    double s = 0.0;
    for (const double v : x)
        s += v * v;
    return s;
}

double
rosenbrock(const std::vector<double> &x)
{
    double s = 0.0;
    for (size_t i = 0; i + 1 < x.size(); ++i) {
        const double a = x[i + 1] - x[i] * x[i];
        const double b = 1.0 - x[i];
        s += 100.0 * a * a + b * b;
    }
    return s;
}

double
rastrigin(const std::vector<double> &x)
{
    double s = 10.0 * static_cast<double>(x.size());
    for (const double v : x)
        s += v * v - 10.0 * std::cos(2.0 * kPi * v);
    return s;
}

TEST(NelderMead, MinimizesSphere)
{
    const auto r = nelderMead(sphere, {3.0, -2.0, 1.5});
    EXPECT_LT(r.value, 1e-10);
    for (const double v : r.x)
        EXPECT_NEAR(v, 0.0, 1e-4);
}

TEST(NelderMead, MinimizesRosenbrock2d)
{
    NelderMeadOptions opts;
    opts.maxIterations = 5000;
    const auto r = nelderMead(rosenbrock, {-1.2, 1.0}, opts);
    EXPECT_LT(r.value, 1e-8);
    EXPECT_NEAR(r.x[0], 1.0, 1e-3);
    EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMead, ReportsEvaluationCount)
{
    const auto r = nelderMead(sphere, {1.0, 1.0});
    EXPECT_GT(r.evaluations, 3);
}

TEST(DualAnnealing, MinimizesSphereInBox)
{
    const std::vector<double> lo(4, -5.0), hi(4, 5.0);
    DualAnnealingOptions opts;
    opts.maxEvaluations = 50000;
    opts.seed = 3;
    const auto r = dualAnnealing(sphere, lo, hi, opts);
    EXPECT_LT(r.value, 1e-8);
}

TEST(DualAnnealing, EscapesRastriginLocalMinima)
{
    // Rastrigin has a dense grid of local minima; a pure local search
    // from a random point nearly always stalls above the global optimum.
    const std::vector<double> lo(3, -5.12), hi(3, 5.12);
    DualAnnealingOptions opts;
    opts.maxEvaluations = 120000;
    opts.seed = 11;
    const auto r = dualAnnealing(rastrigin, lo, hi, opts);
    EXPECT_LT(r.value, 1.0);  // Global minimum is 0; local traps are >= ~1.
}

TEST(DualAnnealing, RespectsBounds)
{
    // Minimum of (x - 10)^2 within [-1, 1] is at the boundary x = 1.
    const auto f = [](const std::vector<double> &x) {
        return (x[0] - 10.0) * (x[0] - 10.0);
    };
    const auto r = dualAnnealing(f, {-1.0}, {1.0});
    EXPECT_GE(r.x[0], -1.0 - 1e-9);
    EXPECT_LE(r.x[0], 1.0 + 1e-9);
    EXPECT_NEAR(r.x[0], 1.0, 1e-3);
}

TEST(DualAnnealing, StopsEarlyAtTarget)
{
    DualAnnealingOptions opts;
    opts.targetValue = 1e-3;
    opts.maxEvaluations = 1000000;
    const std::vector<double> lo(2, -5.0), hi(2, 5.0);
    const auto r = dualAnnealing(sphere, lo, hi, opts);
    EXPECT_LE(r.value, 1e-3);
    EXPECT_LT(r.evaluations, 1000000);
}

TEST(DualAnnealing, DeterministicForFixedSeed)
{
    const std::vector<double> lo(2, -5.0), hi(2, 5.0);
    DualAnnealingOptions opts;
    opts.maxEvaluations = 5000;
    opts.seed = 99;
    const auto a = dualAnnealing(rastrigin, lo, hi, opts);
    const auto b = dualAnnealing(rastrigin, lo, hi, opts);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.x, b.x);
}

TEST(DualAnnealing, BadBoundsThrow)
{
    EXPECT_THROW(dualAnnealing(sphere, {}, {}), std::invalid_argument);
    EXPECT_THROW(dualAnnealing(sphere, {0.0}, {1.0, 2.0}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace geyser
