/**
 * @file
 * Analytic fidelity-model tests: closed-form values, monotonicity, and
 * agreement with simulation (the bound holds; the ranking matches).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "algos/algos.hpp"
#include "geyser/pipeline.hpp"
#include "metrics/fidelity_model.hpp"

namespace geyser {
namespace {

TEST(FidelityModel, SingleGateClosedForm)
{
    Circuit c(1);
    c.u3(0, 1, 1, 1);
    const NoiseModel nm{0.01, 0.02, false, 0.0, 0.0};
    EXPECT_NEAR(noErrorProbability(c, nm), 0.99 * 0.98, 1e-12);
}

TEST(FidelityModel, MultiQubitGatesCountPerQubit)
{
    Circuit c(3);
    c.ccz(0, 1, 2);
    const NoiseModel nm{0.01, 0.0, false, 0.0, 0.0};
    EXPECT_NEAR(noErrorProbability(c, nm), std::pow(0.99, 3), 1e-12);
}

TEST(FidelityModel, PerPulseScalingLowersFidelity)
{
    Circuit c(2);
    c.cz(0, 1);
    NoiseModel perOp = NoiseModel::withRate(0.01);
    NoiseModel perPulse = perOp;
    perPulse.perPulse = true;
    EXPECT_GT(noErrorProbability(c, perOp),
              noErrorProbability(c, perPulse));
}

TEST(FidelityModel, MonotoneInCircuitLength)
{
    const NoiseModel nm = NoiseModel::paperDefault();
    Circuit shorter(2), longer(2);
    for (int i = 0; i < 5; ++i)
        shorter.cz(0, 1);
    for (int i = 0; i < 15; ++i)
        longer.cz(0, 1);
    EXPECT_GT(noErrorProbability(shorter, nm),
              noErrorProbability(longer, nm));
}

TEST(FidelityModel, NoiselessMeansCertainSuccess)
{
    Circuit c(2);
    c.cz(0, 1);
    EXPECT_DOUBLE_EQ(noErrorProbability(c, NoiseModel::withRate(0.0)), 1.0);
    EXPECT_DOUBLE_EQ(tvdUpperBound(c, NoiseModel::withRate(0.0)), 0.0);
}

TEST(FidelityModel, BoundsSimulatedTvd)
{
    // The model's TVD bound must hold against trajectory simulation.
    const Circuit logical = multiplier5Benchmark();
    const auto gey = compileGeyser(logical);
    const NoiseModel nm = NoiseModel::withRate(0.002);
    TrajectoryConfig cfg;
    cfg.trajectories = 400;
    cfg.seed = 19;
    const double simulated = evaluateTvd(gey, nm, cfg);
    const double bound = tvdUpperBound(gey.physical, nm);
    EXPECT_LE(simulated, bound + 0.02);  // Sampling slack.
}

TEST(FidelityModel, RanksTechniquesLikeSimulation)
{
    // The analytic model must order Baseline vs Geyser the same way the
    // noisy simulation does — it is the compiler's cost function.
    const Circuit logical = multiplier5Benchmark();
    const auto base = compileBaseline(logical);
    const auto gey = compileGeyser(logical);
    const NoiseModel nm = NoiseModel::paperDefault();
    EXPECT_GT(tvdUpperBound(base.physical, nm),
              tvdUpperBound(gey.physical, nm));
}

}  // namespace
}  // namespace geyser
