/**
 * @file
 * Property-based fuzz tests: seeded random logical circuits pushed
 * through every pipeline stage must preserve semantics at each step.
 * Circuits come from the shared verify::randomCircuit generator (the
 * same one test_verify_* and the benches use).
 */
#include <gtest/gtest.h>

#include "geyser/pipeline.hpp"
#include "sim/unitary_sim.hpp"
#include "transpile/basis.hpp"
#include "transpile/passes.hpp"
#include "verify/random_circuit.hpp"

namespace geyser {
namespace {

/** A random logical circuit over n qubits with `gates` gates. */
Circuit
randomCircuit(int n, int gates, uint64_t seed)
{
    return verify::randomLogicalCircuit(n, gates, seed);
}

class PipelineFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(PipelineFuzz, LoweringPreservesUnitary)
{
    const Circuit c = randomCircuit(4, 25, static_cast<uint64_t>(GetParam()));
    EXPECT_LT(circuitHsd(c, decomposeToBasis(c)), 1e-8);
}

TEST_P(PipelineFuzz, OptimizationPreservesUnitary)
{
    const Circuit c = randomCircuit(4, 25, static_cast<uint64_t>(GetParam()));
    Circuit opt = decomposeToBasis(c);
    optimize(opt);
    EXPECT_LE(opt.totalPulses(), decomposeToBasis(c).totalPulses());
    EXPECT_LT(circuitHsd(c, opt), 1e-8);
}

TEST_P(PipelineFuzz, FullGeyserPipelinePreservesOutput)
{
    const Circuit c =
        randomCircuit(4, 20, static_cast<uint64_t>(GetParam()) + 100);
    const auto gey = compileGeyser(c);
    EXPECT_LT(idealTvd(gey), 1e-2);
    EXPECT_LE(gey.stats.totalPulses,
              compileOptiMap(c).stats.totalPulses);
}

TEST_P(PipelineFuzz, BaselineAndSuperconductingPreserveOutputExactly)
{
    const Circuit c =
        randomCircuit(5, 18, static_cast<uint64_t>(GetParam()) + 500);
    EXPECT_LT(idealTvd(compileBaseline(c)), 1e-8);
    EXPECT_LT(idealTvd(compileSuperconducting(c)), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, ::testing::Range(1, 9));

}  // namespace
}  // namespace geyser
