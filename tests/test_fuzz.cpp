/**
 * @file
 * Property-based fuzz tests: seeded random logical circuits pushed
 * through every pipeline stage must preserve semantics at each step.
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geyser/pipeline.hpp"
#include "sim/unitary_sim.hpp"
#include "transpile/basis.hpp"
#include "transpile/passes.hpp"

namespace geyser {
namespace {

/** A random logical circuit over n qubits with `gates` gates. */
Circuit
randomCircuit(int n, int gates, uint64_t seed)
{
    Rng rng(seed);
    Circuit c(n);
    for (int i = 0; i < gates; ++i) {
        const int pick = rng.uniformInt(8);
        const Qubit a = rng.uniformInt(n);
        Qubit b = rng.uniformInt(n);
        while (b == a)
            b = rng.uniformInt(n);
        switch (pick) {
          case 0:
            c.h(a);
            break;
          case 1:
            c.u3(a, rng.uniform(0, 2 * kPi), rng.uniform(0, 2 * kPi),
                 rng.uniform(0, 2 * kPi));
            break;
          case 2:
            c.t(a);
            break;
          case 3:
            c.cx(a, b);
            break;
          case 4:
            c.cz(a, b);
            break;
          case 5:
            c.cp(a, b, rng.uniform(0, 2 * kPi));
            break;
          case 6:
            c.rzz(a, b, rng.uniform(0, 2 * kPi));
            break;
          default: {
            if (n >= 3) {
                Qubit d = rng.uniformInt(n);
                while (d == a || d == b)
                    d = rng.uniformInt(n);
                c.ccx(a, b, d);
            } else {
                c.swap(a, b);
            }
            break;
          }
        }
    }
    return c;
}

class PipelineFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(PipelineFuzz, LoweringPreservesUnitary)
{
    const Circuit c = randomCircuit(4, 25, static_cast<uint64_t>(GetParam()));
    EXPECT_LT(circuitHsd(c, decomposeToBasis(c)), 1e-8);
}

TEST_P(PipelineFuzz, OptimizationPreservesUnitary)
{
    const Circuit c = randomCircuit(4, 25, static_cast<uint64_t>(GetParam()));
    Circuit opt = decomposeToBasis(c);
    optimize(opt);
    EXPECT_LE(opt.totalPulses(), decomposeToBasis(c).totalPulses());
    EXPECT_LT(circuitHsd(c, opt), 1e-8);
}

TEST_P(PipelineFuzz, FullGeyserPipelinePreservesOutput)
{
    const Circuit c =
        randomCircuit(4, 20, static_cast<uint64_t>(GetParam()) + 100);
    const auto gey = compileGeyser(c);
    EXPECT_LT(idealTvd(gey), 1e-2);
    EXPECT_LE(gey.stats.totalPulses,
              compileOptiMap(c).stats.totalPulses);
}

TEST_P(PipelineFuzz, BaselineAndSuperconductingPreserveOutputExactly)
{
    const Circuit c =
        randomCircuit(5, 18, static_cast<uint64_t>(GetParam()) + 500);
    EXPECT_LT(idealTvd(compileBaseline(c)), 1e-9);
    EXPECT_LT(idealTvd(compileSuperconducting(c)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, ::testing::Range(1, 9));

}  // namespace
}  // namespace geyser
