/**
 * @file
 * Tweezer-rearrangement planner tests (paper Sec 6 atom-loss refill).
 */
#include <gtest/gtest.h>

#include <set>

#include "topology/rearrange.hpp"

namespace geyser {
namespace {

TEST(Rearrange, NoVacanciesMeansEmptyPlan)
{
    const auto topo = Topology::makeTriangular(3, 3);
    const auto plan = planRearrangement(topo, {}, {6, 7, 8});
    EXPECT_TRUE(plan.complete);
    EXPECT_TRUE(plan.moves.empty());
    EXPECT_EQ(plan.totalDistance, 0.0);
}

TEST(Rearrange, SingleLossTakesNearestSpare)
{
    const auto topo = Topology::makeTriangular(3, 3);
    // Vacancy at site 0; spares at 8 (far) and 3 (near).
    const auto plan = planRearrangement(topo, {0}, {8, 3});
    ASSERT_EQ(plan.moves.size(), 1u);
    EXPECT_EQ(plan.moves[0].from, 3);
    EXPECT_EQ(plan.moves[0].to, 0);
    EXPECT_TRUE(plan.complete);
    EXPECT_NEAR(plan.moves[0].distance, 1.0, 1e-9);
    EXPECT_NEAR(plan.cycleTime, 3.0, 1e-9);  // take + 1 travel + release.
}

TEST(Rearrange, EachSpareUsedAtMostOnce)
{
    const auto topo = Topology::makeSquare(4, 4, false);
    const auto plan = planRearrangement(topo, {0, 1, 2}, {12, 13, 14, 15});
    ASSERT_EQ(plan.moves.size(), 3u);
    std::set<int> sources;
    std::set<int> targets;
    for (const auto &m : plan.moves) {
        sources.insert(m.from);
        targets.insert(m.to);
    }
    EXPECT_EQ(sources.size(), 3u);
    EXPECT_EQ(targets, (std::set<int>{0, 1, 2}));
}

TEST(Rearrange, IncompleteWhenSparesRunOut)
{
    const auto topo = Topology::makeSquare(2, 2, false);
    const auto plan = planRearrangement(topo, {0, 1}, {3});
    EXPECT_FALSE(plan.complete);
    EXPECT_EQ(plan.moves.size(), 1u);
}

TEST(Rearrange, GreedyPairingPicksGloballyClosestFirst)
{
    const auto topo = Topology::makeSquare(1, 6, false);
    // Vacancies at 0 and 2; spares at 3 and 5. Closest pair is (2, 3).
    const auto plan = planRearrangement(topo, {0, 2}, {3, 5});
    ASSERT_EQ(plan.moves.size(), 2u);
    EXPECT_EQ(plan.moves[0].from, 3);
    EXPECT_EQ(plan.moves[0].to, 2);
    EXPECT_EQ(plan.moves[1].from, 5);
    EXPECT_EQ(plan.moves[1].to, 0);
    EXPECT_NEAR(plan.totalDistance, 1.0 + 5.0, 1e-9);
}

TEST(Rearrange, RefillUsesNonComputationalSites)
{
    // 4x4 lattice, 8-site register, lose sites 1 and 6.
    const auto topo = Topology::makeTriangular(4, 4);
    const auto plan = planRefill(topo, 8, {1, 6});
    EXPECT_TRUE(plan.complete);
    ASSERT_EQ(plan.moves.size(), 2u);
    for (const auto &m : plan.moves)
        EXPECT_GE(m.from, 8);  // Spares come from outside the register.
}

TEST(Rearrange, ValidatesSiteIndices)
{
    const auto topo = Topology::makeSquare(2, 2, false);
    EXPECT_THROW(planRearrangement(topo, {9}, {0}), std::invalid_argument);
    EXPECT_THROW(planRearrangement(topo, {0}, {-1}), std::invalid_argument);
    EXPECT_THROW(planRefill(topo, 9, {}), std::invalid_argument);
}

}  // namespace
}  // namespace geyser
