/**
 * @file
 * Pulse-scheduler tests: ASAP depth accounting and restriction-zone
 * serialization.
 */
#include <gtest/gtest.h>

#include "circuit/schedule.hpp"

namespace geyser {
namespace {

TEST(ScheduleAsap, SerialGatesOnOneQubit)
{
    Circuit c(1);
    c.u3(0, 1, 2, 3);
    c.u3(0, 1, 2, 3);
    c.u3(0, 1, 2, 3);
    EXPECT_EQ(depthPulses(c), 3);
}

TEST(ScheduleAsap, ParallelGatesOverlap)
{
    Circuit c(4);
    c.cz(0, 1);
    c.cz(2, 3);
    EXPECT_EQ(depthPulses(c), 3);  // Both CZs run concurrently.
}

TEST(ScheduleAsap, ChainForcesSerialization)
{
    Circuit c(3);
    c.cz(0, 1);
    c.cz(1, 2);  // Shares qubit 1 -> must wait.
    EXPECT_EQ(depthPulses(c), 6);
}

TEST(ScheduleAsap, MixedDurations)
{
    Circuit c(3);
    c.u3(0, 0, 0, 0);   // [0, 1) on q0
    c.ccz(0, 1, 2);     // [1, 6)
    c.u3(1, 0, 0, 0);   // [6, 7)
    EXPECT_EQ(depthPulses(c), 7);
}

TEST(ScheduleAsap, StartTimesExposed)
{
    Circuit c(2);
    c.u3(0, 0, 0, 0);
    c.cz(0, 1);
    const auto sched = scheduleAsap(c);
    EXPECT_EQ(sched.start[0], 0);
    EXPECT_EQ(sched.start[1], 1);
    EXPECT_EQ(sched.makespan, 4);
}

TEST(ScheduleRestriction, ZoneBlocksNeighborGates)
{
    // On a triangular lattice, a CZ on an edge restricts the neighbours:
    // a U3 on a zone atom cannot overlap the CZ window.
    const auto topo = Topology::makeTriangular(2, 2);
    // Atoms 0-1 adjacent; atom 2 is in their zone.
    Circuit c(4);
    c.cz(0, 1);
    c.u3(2, 0, 0, 0);
    const long depth = depthPulses(c, topo);
    EXPECT_EQ(depth, 4);  // U3 waits for the CZ to finish.

    // Without restriction awareness they overlap.
    EXPECT_EQ(depthPulses(c), 3);
}

TEST(ScheduleRestriction, RunningGateBlocksLaterRydbergOp)
{
    // A U3 mid-flight on a zone atom delays a Rydberg gate that would
    // cover it... list order: u3 first, then cz.
    const auto topo = Topology::makeTriangular(2, 2);
    Circuit c(4);
    c.u3(2, 0, 0, 0);
    c.cz(0, 1);
    const auto sched = scheduleRestrictionAware(c, topo);
    EXPECT_EQ(sched.start[1], 1);  // CZ waits for the zone atom's U3.
    EXPECT_EQ(sched.makespan, 4);
}

TEST(ScheduleRestriction, FarApartGatesStillParallel)
{
    const auto topo = Topology::makeTriangular(4, 8);
    Circuit c(topo.numAtoms());
    c.cz(0, 1);
    c.cz(30, 31);
    EXPECT_EQ(depthPulses(c, topo), 3);
}

TEST(ScheduleRestriction, MatchesAsapWhenNoMultiQubitGates)
{
    const auto topo = Topology::makeTriangular(2, 3);
    Circuit c(6);
    for (int q = 0; q < 6; ++q)
        c.u3(q, 0, 0, 0);
    EXPECT_EQ(depthPulses(c, topo), depthPulses(c));
    EXPECT_EQ(depthPulses(c), 1);
}

}  // namespace
}  // namespace geyser
