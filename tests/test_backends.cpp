/**
 * @file
 * Cross-backend parity property suite for the SIMD compute backends
 * (src/linalg/kernels): every compiled-in backend the host can execute
 * must match the scalar reference to 1e-12 on randomized inputs —
 * including unaligned buffers (offset pointers; every kernel documents
 * unaligned tolerance) and tail dimensions (d = 2/4/8/16 plus odd d
 * for the unmasked-tail paths). Runs under Sanitize like the rest of
 * the suite, so masked-load overreads or scratch-buffer overflows in a
 * backend show up as ASan faults here.
 *
 * Also covers the dispatch surface: availableBackends() structure,
 * the avx512 -> avx2 -> scalar fallback chain, ScopedBackend
 * save/restore, and the full evaluator-vs-dense-oracle cross-check
 * (verify/kernel_check) once per backend.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "linalg/kernels/backend.hpp"
#include "verify/kernel_check.hpp"

namespace {

using namespace geyser;
using kernels::ComputeBackend;

constexpr double kTol = 1e-12;

/** Usable non-scalar backends (compiled in AND host-supported). */
std::vector<const ComputeBackend *>
simdBackends()
{
    std::vector<const ComputeBackend *> out;
    for (const auto &info : kernels::availableBackends())
        if (info.backend != nullptr && info.name != "scalar")
            out.push_back(info.backend);
    return out;
}

/**
 * Random split buffer with a deliberate misalignment: the returned
 * pointer is `offset` doubles past the allocation start, so a 64-byte
 * aligned vector yields an 8-byte aligned (SIMD-unaligned) pointer.
 */
struct OffsetBuf
{
    std::vector<double> storage;
    double *p = nullptr;

    OffsetBuf(Rng &rng, size_t n, size_t offset)
        : storage(n + offset)
    {
        for (auto &v : storage)
            v = rng.uniform(-1.0, 1.0);
        p = storage.data() + offset;
    }
};

double
maxAbsDiff(const double *a, const double *b, size_t n)
{
    double m = 0.0;
    for (size_t i = 0; i < n; ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

/** Dims exercising full vectors, masked tails, and scalar-odd tails. */
const int kDims[] = {2, 3, 4, 5, 7, 8, 12, 16};

TEST(BackendDispatch, AvailableBackendsListsAllThreeBestFirst)
{
    const auto backends = kernels::availableBackends();
    ASSERT_EQ(backends.size(), 3u);
    EXPECT_EQ(backends[0].name, "avx512");
    EXPECT_EQ(backends[1].name, "avx2");
    EXPECT_EQ(backends[2].name, "scalar");
    // Scalar is unconditional.
    EXPECT_TRUE(backends[2].compiled);
    EXPECT_TRUE(backends[2].supported);
    ASSERT_NE(backends[2].backend, nullptr);
    EXPECT_STREQ(backends[2].backend->name, "scalar");
    for (const auto &info : backends) {
        // usable <=> compiled && supported.
        EXPECT_EQ(info.backend != nullptr, info.compiled && info.supported)
            << info.name;
        if (info.backend != nullptr) {
            EXPECT_EQ(info.name, info.backend->name);
        }
    }
}

TEST(BackendDispatch, ActiveIsOneOfTheUsableBackends)
{
    const ComputeBackend &active = kernels::active();
    bool found = false;
    for (const auto &info : kernels::availableBackends())
        if (info.backend == &active)
            found = true;
    EXPECT_TRUE(found);
    EXPECT_STREQ(kernels::activeName(), active.name);
}

TEST(BackendDispatch, ResolveFallsDownTheChain)
{
    // Scalar always resolves to itself.
    EXPECT_STREQ(kernels::resolveBackend("scalar").name, "scalar");
    // avx512 resolves to avx512, else avx2, else scalar — never up.
    const std::string got512 = kernels::resolveBackend("avx512").name;
    const std::string got2 = kernels::resolveBackend("avx2").name;
    EXPECT_TRUE(got512 == "avx512" || got512 == "avx2" || got512 == "scalar");
    EXPECT_TRUE(got2 == "avx2" || got2 == "scalar");
    // If avx2 is usable, requesting avx512 never lands below avx2.
    for (const auto &info : kernels::availableBackends()) {
        if (info.name == "avx2" && info.backend != nullptr) {
            EXPECT_NE(got512, "scalar");
        }
    }
}

TEST(BackendDispatch, ScopedBackendOverridesAndRestores)
{
    const std::string before = kernels::activeName();
    {
        kernels::ScopedBackend scoped("scalar");
        EXPECT_TRUE(scoped.honoured());
        EXPECT_STREQ(kernels::activeName(), "scalar");
    }
    EXPECT_EQ(kernels::activeName(), before);
    {
        // Unknown names resolve to the dispatch default (documented as
        // honoured — there was no specific request to miss).
        kernels::ScopedBackend scoped("no-such-isa");
        EXPECT_TRUE(scoped.honoured());
        const std::string fallback = kernels::activeName();
        bool usable = false;
        for (const auto &info : kernels::availableBackends())
            if (info.backend != nullptr && info.name == fallback)
                usable = true;
        EXPECT_TRUE(usable) << fallback;
    }
    EXPECT_EQ(kernels::activeName(), before);
}

TEST(BackendParity, MatmulAndDagger)
{
    Rng rng(2025);
    for (const ComputeBackend *backend : simdBackends()) {
        for (const int d : kDims) {
            for (const size_t offset : {size_t{0}, size_t{1}, size_t{3}}) {
                const size_t n = static_cast<size_t>(d) * d;
                OffsetBuf aRe(rng, n, offset), aIm(rng, n, offset);
                OffsetBuf bRe(rng, n, offset), bIm(rng, n, offset);
                std::vector<double> refRe(n), refIm(n);
                OffsetBuf outRe(rng, n, offset), outIm(rng, n, offset);

                kernels::reference().matmul(aRe.p, aIm.p, bRe.p, bIm.p,
                                            refRe.data(), refIm.data(), d);
                backend->matmul(aRe.p, aIm.p, bRe.p, bIm.p, outRe.p,
                                outIm.p, d);
                EXPECT_LT(maxAbsDiff(refRe.data(), outRe.p, n), kTol)
                    << backend->name << " matmul d=" << d
                    << " offset=" << offset;
                EXPECT_LT(maxAbsDiff(refIm.data(), outIm.p, n), kTol);

                kernels::reference().matmulDagger(aRe.p, aIm.p, bRe.p,
                                                  bIm.p, refRe.data(),
                                                  refIm.data(), d);
                backend->matmulDagger(aRe.p, aIm.p, bRe.p, bIm.p, outRe.p,
                                      outIm.p, d);
                EXPECT_LT(maxAbsDiff(refRe.data(), outRe.p, n), kTol)
                    << backend->name << " matmulDagger d=" << d
                    << " offset=" << offset;
                EXPECT_LT(maxAbsDiff(refIm.data(), outIm.p, n), kTol);
            }
        }
    }
}

TEST(BackendParity, TraceContractions)
{
    Rng rng(2026);
    for (const ComputeBackend *backend : simdBackends()) {
        for (const int d : kDims) {
            for (const size_t offset : {size_t{0}, size_t{1}, size_t{3}}) {
                const size_t n = static_cast<size_t>(d) * d;
                OffsetBuf aRe(rng, n, offset), aIm(rng, n, offset);
                OffsetBuf bRe(rng, n, offset), bIm(rng, n, offset);

                double refR = 0.0, refI = 0.0, gotR = 0.0, gotI = 0.0;
                kernels::reference().traceProduct(aRe.p, aIm.p, bRe.p,
                                                  bIm.p, d, &refR, &refI);
                backend->traceProduct(aRe.p, aIm.p, bRe.p, bIm.p, d, &gotR,
                                      &gotI);
                EXPECT_NEAR(refR, gotR, kTol)
                    << backend->name << " traceProduct d=" << d;
                EXPECT_NEAR(refI, gotI, kTol);

                kernels::reference().traceConjDot(aRe.p, aIm.p, bRe.p,
                                                  bIm.p, n, &refR, &refI);
                backend->traceConjDot(aRe.p, aIm.p, bRe.p, bIm.p, n, &gotR,
                                      &gotI);
                EXPECT_NEAR(refR, gotR, kTol)
                    << backend->name << " traceConjDot n=" << n;
                EXPECT_NEAR(refI, gotI, kTol);
            }
        }
    }
}

TEST(BackendParity, Apply2x2RowsAndCols)
{
    Rng rng(2027);
    for (const ComputeBackend *backend : simdBackends()) {
        for (const int d : {2, 4, 8, 16}) {
            for (int bit = 1; bit < d; bit <<= 1) {
                for (const size_t offset :
                     {size_t{0}, size_t{1}, size_t{3}}) {
                    const size_t n = static_cast<size_t>(d) * d;
                    OffsetBuf re(rng, n, offset), im(rng, n, offset);
                    double uRe[4], uIm[4];
                    for (int i = 0; i < 4; ++i) {
                        uRe[i] = rng.uniform(-1.0, 1.0);
                        uIm[i] = rng.uniform(-1.0, 1.0);
                    }
                    std::vector<double> refRe(re.p, re.p + n);
                    std::vector<double> refIm(im.p, im.p + n);

                    kernels::reference().apply2x2Rows(refRe.data(),
                                                      refIm.data(), uRe,
                                                      uIm, bit, d);
                    backend->apply2x2Rows(re.p, im.p, uRe, uIm, bit, d);
                    EXPECT_LT(maxAbsDiff(refRe.data(), re.p, n), kTol)
                        << backend->name << " apply2x2Rows d=" << d
                        << " bit=" << bit << " offset=" << offset;
                    EXPECT_LT(maxAbsDiff(refIm.data(), im.p, n), kTol);

                    kernels::reference().apply2x2Cols(refRe.data(),
                                                      refIm.data(), uRe,
                                                      uIm, bit, d);
                    backend->apply2x2Cols(re.p, im.p, uRe, uIm, bit, d);
                    EXPECT_LT(maxAbsDiff(refRe.data(), re.p, n), kTol)
                        << backend->name << " apply2x2Cols d=" << d
                        << " bit=" << bit << " offset=" << offset;
                    EXPECT_LT(maxAbsDiff(refIm.data(), im.p, n), kTol);
                }
            }
        }
    }
}

TEST(BackendParity, FlipRowsAndCols)
{
    Rng rng(2028);
    for (const ComputeBackend *backend : simdBackends()) {
        for (const int d : {2, 4, 8, 16}) {
            for (const int mask : {1, 3, d - 1}) {
                const size_t n = static_cast<size_t>(d) * d;
                OffsetBuf re(rng, n, 1), im(rng, n, 1);
                std::vector<double> refRe(re.p, re.p + n);
                std::vector<double> refIm(im.p, im.p + n);

                kernels::reference().flipRows(refRe.data(), refIm.data(),
                                              mask, d);
                backend->flipRows(re.p, im.p, mask, d);
                EXPECT_LT(maxAbsDiff(refRe.data(), re.p, n), kTol)
                    << backend->name << " flipRows d=" << d;

                kernels::reference().flipCols(refRe.data(), refIm.data(),
                                              mask, d);
                backend->flipCols(re.p, im.p, mask, d);
                EXPECT_LT(maxAbsDiff(refRe.data(), re.p, n), kTol)
                    << backend->name << " flipCols d=" << d;
            }
        }
    }
}

TEST(BackendParity, FoldW)
{
    Rng rng(2029);
    for (const ComputeBackend *backend : simdBackends()) {
        for (int numQubits = 1; numQubits <= 4; ++numQubits) {
            const int dim = 1 << numQubits;
            const size_t n = static_cast<size_t>(dim) * dim;
            for (int qubit = 0; qubit < numQubits; ++qubit) {
                for (const size_t offset : {size_t{0}, size_t{1}}) {
                    OffsetBuf envRe(rng, n, offset), envIm(rng, n, offset);
                    double u3Re[4][4], u3Im[4][4];
                    for (int q = 0; q < 4; ++q)
                        kernels::u3Entries(rng.uniform(0.0, 2.0 * kPi),
                                           rng.uniform(0.0, 2.0 * kPi),
                                           rng.uniform(0.0, 2.0 * kPi),
                                           u3Re[q], u3Im[q]);
                    double refRe[4], refIm[4], gotRe[4], gotIm[4];
                    kernels::reference().foldW(envRe.p, envIm.p, u3Re,
                                               u3Im, numQubits, qubit,
                                               refRe, refIm);
                    backend->foldW(envRe.p, envIm.p, u3Re, u3Im, numQubits,
                                   qubit, gotRe, gotIm);
                    EXPECT_LT(maxAbsDiff(refRe, gotRe, 4), kTol)
                        << backend->name << " foldW n=" << numQubits
                        << " q=" << qubit;
                    EXPECT_LT(maxAbsDiff(refIm, gotIm, 4), kTol);
                }
            }
        }
    }
}

TEST(BackendParity, ProbeBatch)
{
    Rng rng(2030);
    for (const ComputeBackend *backend : simdBackends()) {
        for (const int count : {1, 2, 3, 6}) {
            for (const size_t offset : {size_t{0}, size_t{1}}) {
                OffsetBuf wRe(rng, 4, offset), wIm(rng, 4, offset);
                OffsetBuf u3Re(rng, static_cast<size_t>(count) * 4, offset);
                OffsetBuf u3Im(rng, static_cast<size_t>(count) * 4, offset);
                std::vector<double> refRe(static_cast<size_t>(count));
                std::vector<double> refIm(static_cast<size_t>(count));
                std::vector<double> gotRe(static_cast<size_t>(count));
                std::vector<double> gotIm(static_cast<size_t>(count));
                kernels::reference().probeBatch(wRe.p, wIm.p, u3Re.p,
                                                u3Im.p, count,
                                                refRe.data(), refIm.data());
                backend->probeBatch(wRe.p, wIm.p, u3Re.p, u3Im.p, count,
                                    gotRe.data(), gotIm.data());
                EXPECT_LT(maxAbsDiff(refRe.data(), gotRe.data(),
                                     static_cast<size_t>(count)),
                          kTol)
                    << backend->name << " probeBatch count=" << count;
                EXPECT_LT(maxAbsDiff(refIm.data(), gotIm.data(),
                                     static_cast<size_t>(count)),
                          kTol);
            }
        }
    }
}

TEST(BackendParity, StatevectorKernels)
{
    Rng rng(2031);
    for (const ComputeBackend *backend : simdBackends()) {
        for (int numQubits = 1; numQubits <= 6; ++numQubits) {
            const size_t dim = size_t{1} << numQubits;
            std::vector<Complex> base(dim);
            for (auto &a : base)
                a = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};

            Complex u1[4];
            for (auto &v : u1)
                v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
            for (int q = 0; q < numQubits; ++q) {
                std::vector<Complex> ref = base, got = base;
                kernels::reference().svApply1q(ref.data(), dim, q, u1);
                backend->svApply1q(got.data(), dim, q, u1);
                for (size_t i = 0; i < dim; ++i)
                    EXPECT_LT(std::abs(ref[i] - got[i]), kTol)
                        << backend->name << " svApply1q n=" << numQubits
                        << " q=" << q;
            }

            if (numQubits < 2)
                continue;
            Complex u2[16];
            for (auto &v : u2)
                v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
            for (int q0 = 0; q0 < numQubits; ++q0) {
                for (int q1 = 0; q1 < numQubits; ++q1) {
                    if (q0 == q1)
                        continue;
                    std::vector<Complex> ref = base, got = base;
                    kernels::reference().svApply2q(ref.data(), dim, q0, q1,
                                                   u2);
                    backend->svApply2q(got.data(), dim, q0, q1, u2);
                    for (size_t i = 0; i < dim; ++i)
                        EXPECT_LT(std::abs(ref[i] - got[i]), kTol)
                            << backend->name << " svApply2q n=" << numQubits
                            << " q0=" << q0 << " q1=" << q1;
                }
            }
        }
    }
}

/** Randomized ansatz shapes/angles, full evaluator vs the dense oracle
 *  (pinned to the scalar reference) once per usable backend. */
TEST(BackendParity, EvaluatorMatchesDenseOracleOnEveryBackend)
{
    for (const auto &info : kernels::availableBackends()) {
        if (info.backend == nullptr)
            continue;
        kernels::ScopedBackend scoped(info.name);
        ASSERT_TRUE(scoped.honoured()) << info.name;
        verify::KernelCheckOptions options;
        options.trials = 6;
        options.seed = 777;
        const auto report = verify::checkComposeKernel(options);
        EXPECT_TRUE(report.pass)
            << info.name << ": " << report.detail;
        EXPECT_LT(report.maxDeviation, options.tolerance) << info.name;
    }
}

}  // namespace
