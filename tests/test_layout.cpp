/**
 * @file
 * Initial-layout tests: the greedy interaction-aware placement is a
 * valid injection, routes correctly, and does not increase SWAP count
 * versus the trivial layout on interaction-heavy circuits.
 */
#include <gtest/gtest.h>

#include <set>

#include "transpile/basis.hpp"
#include "transpile/router.hpp"

namespace geyser {
namespace {

TEST(Layout, GreedyLayoutIsInjective)
{
    const auto topo = Topology::makeTriangular(3, 3);
    Circuit c(7);
    for (int i = 0; i < 6; ++i)
        c.cz(i, i + 1);
    const auto layout = chooseInitialLayout(c, topo);
    ASSERT_EQ(layout.size(), 7u);
    std::set<Qubit> atoms;
    for (const Qubit a : layout) {
        EXPECT_GE(a, 0);
        EXPECT_LT(a, topo.numAtoms());
        atoms.insert(a);
    }
    EXPECT_EQ(atoms.size(), 7u);
}

TEST(Layout, HeavyPairPlacedAdjacent)
{
    const auto topo = Topology::makeTriangular(3, 3);
    Circuit c(6);
    for (int i = 0; i < 20; ++i)
        c.cz(2, 5);  // One dominant interaction.
    const auto layout = chooseInitialLayout(c, topo);
    EXPECT_TRUE(topo.areAdjacent(layout[2], layout[5]));
}

TEST(Layout, GreedyLayoutNeverMoreSwapsOnChainCircuit)
{
    // A distance-heavy circuit: qubit 0 talks to the last qubit a lot.
    const auto topo = Topology::makeSquare(3, 3, false);
    Circuit logical(9);
    for (int r = 0; r < 5; ++r) {
        logical.cx(0, 8);
        logical.cx(8, 0);
    }
    const Circuit phys = decomposeToBasis(logical);
    const auto trivial = route(phys, topo);
    const auto greedy =
        route(phys, topo, chooseInitialLayout(phys, topo));
    EXPECT_LE(greedy.swapsInserted, trivial.swapsInserted);
    EXPECT_GT(trivial.swapsInserted, 0);
    EXPECT_EQ(greedy.swapsInserted, 0);  // The pair starts adjacent.
}

TEST(Layout, RouteValidatesLayoutSize)
{
    const auto topo = Topology::makeTriangular(2, 2);
    Circuit c(3);
    c.u3(0, 1, 1, 1);
    EXPECT_THROW(route(c, topo, {0, 1}), std::invalid_argument);
}

TEST(Layout, RouteHonorsCustomLayout)
{
    const auto topo = Topology::makeTriangular(2, 2);
    Circuit c(2);
    c.u3(0, 1, 1, 1);
    const auto routed = route(c, topo, {3, 1});
    EXPECT_EQ(routed.circuit.gates()[0].qubit(0), 3);
    EXPECT_EQ(routed.initialLayout, (std::vector<Qubit>{3, 1}));
}

TEST(Layout, IsolatedQubitsStillPlaced)
{
    const auto topo = Topology::makeTriangular(3, 3);
    Circuit c(5);  // No gates at all.
    const auto layout = chooseInitialLayout(c, topo);
    std::set<Qubit> atoms(layout.begin(), layout.end());
    EXPECT_EQ(atoms.size(), 5u);
}

}  // namespace
}  // namespace geyser
