/**
 * @file
 * Round-trip fuzz tests for the serialization layer: parse -> serialize
 * -> re-parse must yield an equivalent circuit for random circuits over
 * the full supported gate set (QASM, where CCZ legally re-enters as
 * h-conjugated Toffoli, so equivalence is checked at the unitary level),
 * and the native text format must round-trip gate-for-gate.
 */
#include <gtest/gtest.h>

#include "io/qasm_parser.hpp"
#include "io/serialize.hpp"
#include "verify/equivalence.hpp"
#include "verify/random_circuit.hpp"

namespace geyser {
namespace {

class RoundTripFuzz : public ::testing::TestWithParam<int>
{
};

Circuit
drawCircuit(int seed)
{
    return verify::randomLogicalCircuit(3 + seed % 3, 20,
                                        static_cast<uint64_t>(seed) * 7 + 1);
}

TEST_P(RoundTripFuzz, QasmRoundTripPreservesUnitary)
{
    const Circuit c = drawCircuit(GetParam());
    const Circuit reparsed = circuitFromQasm(circuitToQasm(c));
    EXPECT_EQ(reparsed.numQubits(), c.numQubits());
    const auto report = verify::checkUnitary(c, reparsed);
    EXPECT_TRUE(report.equivalent) << report.detail;
}

TEST_P(RoundTripFuzz, QasmRoundTripReachesFixpoint)
{
    // After one round trip the gate list is stable: serializing and
    // re-parsing again must reproduce it exactly.
    const Circuit once = circuitFromQasm(circuitToQasm(drawCircuit(GetParam())));
    const std::string qasm = circuitToQasm(once);
    const Circuit twice = circuitFromQasm(qasm);
    ASSERT_EQ(once.size(), twice.size());
    for (size_t i = 0; i < once.size(); ++i)
        EXPECT_TRUE(once.gates()[i] == twice.gates()[i]) << "gate " << i;
    EXPECT_EQ(qasm, circuitToQasm(twice));
}

TEST_P(RoundTripFuzz, NativeTextRoundTripsGateForGate)
{
    const Circuit c = drawCircuit(GetParam());
    const Circuit reparsed = circuitFromText(circuitToText(c));
    ASSERT_EQ(reparsed.numQubits(), c.numQubits());
    ASSERT_EQ(reparsed.size(), c.size());
    for (size_t i = 0; i < c.size(); ++i)
        EXPECT_TRUE(c.gates()[i] == reparsed.gates()[i]) << "gate " << i;
}

TEST_P(RoundTripFuzz, PhysicalCircuitsRoundTripThroughQasm)
{
    // Compiled (physical-basis) circuits are what geyserc actually
    // exports; CCZ goes out as h ccx h and must come back equivalent.
    const Circuit c = verify::randomPhysicalCircuit(
        4, 15, static_cast<uint64_t>(GetParam()) * 19 + 3);
    const Circuit reparsed = circuitFromQasm(circuitToQasm(c));
    const auto report = verify::checkUnitary(c, reparsed);
    EXPECT_TRUE(report.equivalent) << report.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzz, ::testing::Range(1, 25));

}  // namespace
}  // namespace geyser
