/**
 * @file
 * Determinism and differential-simulation tests: the trajectory engine
 * must produce bit-identical distributions whether it runs serially or
 * on the thread pool (guarding the fixed-chunk seed-derivation scheme in
 * src/sim/trajectory.cpp), and the three simulation engines must agree
 * with each other through verify::runDifferential.
 */
#include <gtest/gtest.h>

#include "sim/statevector.hpp"
#include "sim/trajectory.hpp"
#include "verify/differential.hpp"
#include "verify/random_circuit.hpp"

namespace geyser {
namespace {

class TrajectoryDeterminism : public ::testing::TestWithParam<int>
{
};

TEST_P(TrajectoryDeterminism, ParallelMatchesSerialBitForBit)
{
    const Circuit c = verify::randomLogicalCircuit(
        4, 30, static_cast<uint64_t>(GetParam()) * 31);
    NoiseModel noise = NoiseModel::withRate(0.01);
    noise.atomLoss = 0.02;  // Exercises the lost-atom branch too.

    TrajectoryConfig serial;
    serial.trajectories = 70;  // Spans several 16-trajectory chunks.
    serial.seed = 4242;
    serial.parallel = false;
    TrajectoryConfig parallel = serial;
    parallel.parallel = true;

    const Distribution ds = noisyDistribution(c, noise, serial);
    const Distribution dp = noisyDistribution(c, noise, parallel);
    ASSERT_EQ(ds.size(), dp.size());
    for (size_t i = 0; i < ds.size(); ++i)
        EXPECT_EQ(ds[i], dp[i]) << "outcome " << i;  // Bit-identical.
}

TEST_P(TrajectoryDeterminism, SameSeedReproducesExactly)
{
    const Circuit c = verify::randomLogicalCircuit(
        3, 20, static_cast<uint64_t>(GetParam()) * 17 + 5);
    const NoiseModel noise = NoiseModel::paperDefault();
    TrajectoryConfig cfg;
    cfg.trajectories = 40;
    cfg.seed = 99;
    const Distribution a = noisyDistribution(c, noise, cfg);
    const Distribution b = noisyDistribution(c, noise, cfg);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrajectoryDeterminism,
                         ::testing::Range(1, 7));

TEST(Differential, NoiselessTrajectoryMatchesStatevectorExactly)
{
    for (int seed = 1; seed <= 8; ++seed) {
        const Circuit c = verify::randomLogicalCircuit(
            4, 25, static_cast<uint64_t>(seed) * 7);
        NoiseModel off;
        off.bitFlip = 0.0;
        off.phaseFlip = 0.0;
        TrajectoryConfig cfg;
        cfg.trajectories = 1;
        cfg.parallel = false;
        cfg.forceTrajectories = true;
        const Distribution traj = noisyDistribution(c, off, cfg);
        const Distribution ideal = idealDistribution(c);
        ASSERT_EQ(traj.size(), ideal.size());
        for (size_t i = 0; i < traj.size(); ++i)
            EXPECT_EQ(traj[i], ideal[i]) << "seed " << seed;
    }
}

TEST(Differential, AllEnginesAgreeOnRandomCircuits)
{
    for (int seed = 1; seed <= 4; ++seed) {
        const Circuit c = verify::randomLogicalCircuit(
            4, 20, static_cast<uint64_t>(seed) * 11 + 2);
        const auto report =
            verify::runDifferential(c, NoiseModel::withRate(0.01));
        EXPECT_TRUE(report.passed)
            << report.stage << ": " << report.detail;
    }
}

TEST(Differential, DivergenceYieldsMinimizedReproducer)
{
    // Force a failure by demanding an absurd channel tolerance; the
    // report must point at the channel stage and carry a shrunken
    // reproducer that still "fails".
    const Circuit c = verify::randomLogicalCircuit(3, 12, 31);
    verify::DifferentialOptions options;
    options.trajectories = 20;
    options.channelTolerance = 1e-15;
    const auto report = verify::runDifferential(c, NoiseModel::withRate(0.05),
                                        options);
    ASSERT_FALSE(report.passed);
    EXPECT_EQ(report.stage, "density-matrix-vs-trajectory");
    EXPECT_GT(report.reproducer.size(), 0u);
    EXPECT_LE(report.reproducer.size(), c.size());
    EXPECT_NE(report.detail.find("minimized reproducer"), std::string::npos);
}

TEST(Differential, MinimizerShrinksToSingleCulprit)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.t(2);
    c.ccx(0, 1, 2);
    c.z(1);
    const auto hasToffoli = [](const Circuit &candidate) {
        return candidate.countKind(GateKind::CCX) > 0;
    };
    const Circuit minimal = verify::minimizeFailingCircuit(c, hasToffoli);
    ASSERT_EQ(minimal.size(), 1u);
    EXPECT_EQ(minimal.gates()[0].kind(), GateKind::CCX);
}

}  // namespace
}  // namespace geyser
