/**
 * @file
 * Circuit-blocking tests (Algorithm 1): ownership invariants, block
 * self-containment, restriction-zone compatibility within rounds, and
 * unitary preservation of the flattened blocked circuit.
 */
#include <gtest/gtest.h>

#include "blocking/blocker.hpp"
#include "sim/unitary_sim.hpp"
#include "transpile/basis.hpp"
#include "transpile/router.hpp"

namespace geyser {
namespace {

/** Build a routed physical circuit on a triangular lattice. */
Circuit
routedOn(const Circuit &logical, const Topology &topo)
{
    return route(decomposeToBasis(logical), topo).circuit;
}

TEST(Blocking, EveryGateOwnedExactlyOnce)
{
    const auto topo = Topology::makeTriangular(2, 3);
    Circuit c(6);
    c.h(0);
    c.cx(0, 1);
    c.cx(3, 4);
    c.t(4);
    c.cx(1, 3);
    const Circuit phys = routedOn(c, topo);
    const auto blocked = blockCircuit(phys, topo);
    EXPECT_NO_THROW(blocked.checkInvariants());
    size_t owned = 0;
    for (const auto &round : blocked.rounds)
        for (const auto &block : round.blocks)
            owned += block.opIndices.size();
    EXPECT_EQ(owned, phys.size());
}

TEST(Blocking, BlocksHaveAtMostThreeAtoms)
{
    const auto topo = Topology::makeTriangular(3, 3);
    Circuit c(9);
    for (int i = 0; i < 8; ++i)
        c.cx(i, i + 1);
    const auto blocked = blockCircuit(routedOn(c, topo), topo);
    for (const auto &round : blocked.rounds)
        for (const auto &block : round.blocks) {
            EXPECT_GE(block.atoms.size(), 1u);
            EXPECT_LE(block.atoms.size(), 3u);
        }
}

TEST(Blocking, FlattenedCircuitPreservesUnitary)
{
    const auto topo = Topology::makeTriangular(2, 2);
    Circuit c(4);
    c.h(0);
    c.cx(0, 1);
    c.t(1);
    c.cx(1, 2);
    c.cx(2, 3);
    c.h(3);
    c.cx(0, 3);
    const Circuit phys = routedOn(c, topo);
    const auto blocked = blockCircuit(phys, topo);
    blocked.checkInvariants();
    EXPECT_LT(circuitHsd(phys, blocked.flatten()), 1e-9);
}

TEST(Blocking, RoundBlocksAreRestrictionCompatible)
{
    const auto topo = Topology::makeTriangular(3, 4);
    Circuit c(12);
    for (int i = 0; i + 1 < 12; i += 2)
        c.cx(i, i + 1);
    for (int i = 0; i + 1 < 12; i += 2)
        c.cx(i + 1, i);
    const auto blocked = blockCircuit(routedOn(c, topo), topo);
    for (const auto &round : blocked.rounds) {
        for (size_t i = 0; i < round.blocks.size(); ++i) {
            for (size_t j = i + 1; j < round.blocks.size(); ++j) {
                const auto &a = round.blocks[i];
                const auto &b = round.blocks[j];
                if (a.hasMultiQubitOps || b.hasMultiQubitOps)
                    EXPECT_TRUE(topo.setsCompatible(a.atoms, b.atoms));
            }
        }
    }
}

TEST(Blocking, LocalCircuitRemapsToBlockQubits)
{
    const auto topo = Topology::makeTriangular(2, 2);
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    const auto blocked = blockCircuit(routedOn(c, topo), topo);
    for (const auto &round : blocked.rounds) {
        for (const auto &block : round.blocks) {
            const Circuit local = blocked.localCircuit(block);
            EXPECT_EQ(local.numQubits(),
                      static_cast<int>(block.atoms.size()));
            for (const auto &g : local.gates())
                for (int i = 0; i < g.numQubits(); ++i)
                    EXPECT_LT(g.qubit(i),
                              static_cast<int>(block.atoms.size()));
        }
    }
}

TEST(Blocking, PulseAwareScoringCountsPulses)
{
    const auto topo = Topology::makeTriangular(2, 2);
    Circuit phys(4);
    phys.u3(0, 1, 1, 1);
    phys.cz(0, 1);
    const auto blocked = blockCircuit(phys, topo);
    long pulses = 0;
    for (const auto &round : blocked.rounds)
        for (const auto &block : round.blocks)
            pulses += block.pulseCount;
    EXPECT_EQ(pulses, phys.totalPulses());
}

TEST(Blocking, GateAwareModeAlsoValid)
{
    const auto topo = Topology::makeTriangular(2, 3);
    Circuit c(6);
    for (int i = 0; i < 5; ++i)
        c.cx(i, i + 1);
    BlockerOptions opts;
    opts.pulseAware = false;
    const Circuit phys = routedOn(c, topo);
    const auto blocked = blockCircuit(phys, topo, opts);
    blocked.checkInvariants();
    EXPECT_LT(circuitHsd(phys, blocked.flatten()), 1e-9);
}

TEST(Blocking, RequiresPhysicalCircuit)
{
    const auto topo = Topology::makeTriangular(2, 2);
    Circuit c(2);
    c.h(0);
    EXPECT_THROW(blockCircuit(c, topo), std::invalid_argument);
}

TEST(Blocking, RequiresTriangles)
{
    const auto topo = Topology::makeSquare(2, 2, false);
    Circuit c(4);
    c.u3(0, 1, 1, 1);
    EXPECT_THROW(blockCircuit(c, topo), std::invalid_argument);
}

TEST(Blocking, SingleQubitCircuitStillBlocks)
{
    const auto topo = Topology::makeTriangular(2, 2);
    Circuit phys(4);
    for (int i = 0; i < 5; ++i)
        phys.u3(0, 0.1, 0.2, 0.3);
    const auto blocked = blockCircuit(phys, topo);
    blocked.checkInvariants();
    EXPECT_EQ(blocked.rounds.size(), 1u);
    EXPECT_EQ(blocked.rounds[0].blocks.size(), 1u);
}

TEST(Blocking, ParallelizableCircuitUsesFewRounds)
{
    // Two independent far-apart gate groups should land in one round.
    const auto topo = Topology::makeTriangular(4, 8);
    Circuit phys(topo.numAtoms());
    phys.cz(0, 1);
    phys.u3(0, 1, 1, 1);
    phys.cz(30, 31);
    phys.u3(31, 1, 1, 1);
    const auto blocked = blockCircuit(phys, topo);
    EXPECT_EQ(blocked.rounds.size(), 1u);
    EXPECT_EQ(blocked.rounds[0].blocks.size(), 2u);
}

TEST(Blocking, DependentChainsNeedMultipleRounds)
{
    // A long CZ chain across the lattice cannot fit one 3-atom block.
    const auto topo = Topology::makeTriangular(2, 4);
    Circuit phys(topo.numAtoms());
    phys.cz(0, 1);
    phys.cz(1, 2);
    phys.cz(2, 3);
    phys.cz(3, 7);
    const auto blocked = blockCircuit(phys, topo);
    blocked.checkInvariants();
    EXPECT_GT(blocked.rounds.size(), 1u);
}

TEST(Blocking, BlockCountMatchesRoundsContents)
{
    const auto topo = Topology::makeTriangular(2, 3);
    Circuit c(6);
    for (int i = 0; i < 5; ++i)
        c.cx(i, (i + 1) % 6);
    const auto blocked = blockCircuit(routedOn(c, topo), topo);
    int count = 0;
    for (const auto &round : blocked.rounds)
        count += static_cast<int>(round.blocks.size());
    EXPECT_EQ(count, blocked.blockCount());
}

}  // namespace
}  // namespace geyser
