/**
 * @file
 * Property tests for block composition through the verification layer:
 * composed 2Q/3Q blocks must match their block unitary within the
 * composer's HSD tolerance, and end-to-end Geyser output must be
 * distribution-equivalent to OptiMap on noiseless input.
 */
#include <gtest/gtest.h>

#include "compose/composer.hpp"
#include "geyser/pipeline.hpp"
#include "sim/statevector.hpp"
#include "sim/unitary_sim.hpp"
#include "verify/equivalence.hpp"
#include "verify/random_circuit.hpp"

namespace geyser {
namespace {

/** Fast composer settings: enough budget to compose small blocks. */
ComposeOptions
quickCompose()
{
    ComposeOptions options;
    options.restarts = 4;
    options.maxSweeps = 120;
    options.maxEvaluationsPerBlock = 20000;
    options.annealingEvaluations = 4000;
    return options;
}

class ComposeProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(ComposeProperty, ComposedBlocksMatchBlockUnitaryWithinTolerance)
{
    const int seed = GetParam();
    const int width = 2 + seed % 2;  // 2Q and 3Q blocks.
    const Circuit block = verify::randomPhysicalCircuit(
        width, 8, static_cast<uint64_t>(seed) * 13 + 1);
    const ComposeOptions options = quickCompose();
    const ComposeResult result = composeBlock(block, options);

    // The adopted circuit — composed ansatz or the original — is always
    // equivalent to the block within the acceptance threshold (recursive
    // midpoint splitting can stack up to 4 leaves of threshold each).
    const double hsd = circuitHsd(block, result.circuit);
    EXPECT_LE(hsd, result.composed ? 1e-4 : 1e-9)
        << (result.composed ? "composed" : "kept original") << " at seed "
        << seed;
}

TEST_P(ComposeProperty, EntanglerFreeBlocksComposeExactly)
{
    verify::RandomCircuitOptions rc;
    rc.numQubits = 3;
    rc.numGates = 6;
    rc.seed = static_cast<uint64_t>(GetParam()) * 29 + 7;
    rc.gateSet = {GateKind::U3};
    const Circuit block = verify::randomCircuit(rc);
    const ComposeResult result = composeBlock(block, quickCompose());
    EXPECT_TRUE(result.composed);
    const auto report = verify::checkUnitary(block, result.circuit);
    EXPECT_TRUE(report.equivalent) << report.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComposeProperty, ::testing::Range(1, 13));

class GeyserVsOptiMap : public ::testing::TestWithParam<int>
{
};

TEST_P(GeyserVsOptiMap, NoiselessOutputsAreDistributionEquivalent)
{
    const Circuit c = verify::randomLogicalCircuit(
        4, 16, static_cast<uint64_t>(GetParam()) + 300);
    const CompileResult gey = compileGeyser(c);
    const CompileResult opt = compileOptiMap(c);

    const Distribution pGey = projectToLogical(
        idealDistribution(gey.physical), gey.finalLayout, c.numQubits(),
        gey.physical.numQubits());
    const Distribution pOpt = projectToLogical(
        idealDistribution(opt.physical), opt.finalLayout, c.numQubits(),
        opt.physical.numQubits());

    const auto d = verify::compareDistributions(pGey, pOpt, 1e-2);
    EXPECT_TRUE(d.pass) << "tvd=" << d.tvd << " fidelity=" << d.fidelity;

    // Both also match the logical program itself (OptiMap exactly).
    const auto geyReport = verify::checkCompileResult(gey);
    EXPECT_TRUE(geyReport.equivalent) << geyReport.detail;
    const auto optReport = verify::checkCompileResult(opt);
    EXPECT_TRUE(optReport.equivalent) << optReport.detail;
    EXPECT_EQ(optReport.method, "routed-unitary");
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeyserVsOptiMap, ::testing::Range(1, 7));

}  // namespace
}  // namespace geyser
