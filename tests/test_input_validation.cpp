/**
 * @file
 * Negative-path coverage for the untrusted-input boundary: one table
 * case per parser/deserializer diagnostic (QASM, angle expressions,
 * native circuit text, cache entries), Circuit::validate() invariants,
 * and round-trip property tests asserting validate() holds after
 * parse → emit → parse.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "algos/algos.hpp"
#include "common/error.hpp"
#include "geyser/pipeline.hpp"
#include "io/qasm_parser.hpp"
#include "io/serialize.hpp"
#include "verify/random_circuit.hpp"

namespace geyser {
namespace {

// ---------------------------------------------------------------------
// QASM diagnostics: every rejection carries `qasm:<line>:` context.

struct QasmCase
{
    const char *name;
    const char *text;
    const char *expect;  ///< Substring the diagnostic must contain.
};

const QasmCase kQasmCases[] = {
    {"operand index beyond qreg size",
     "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[9];\n",
     "operand index 9 out of range"},
    {"negative operand index",
     "OPENQASM 2.0;\nqreg q[2];\nh q[-1];\n",
     "operand index -1 out of range"},
    {"malformed register size",
     "OPENQASM 2.0;\nqreg q[xyz];\n",
     "malformed register size: 'xyz'"},
    {"overflowing register size",
     "OPENQASM 2.0;\nqreg q[99999999999999999999];\n",
     "register size out of range"},
    {"zero register size",
     "OPENQASM 2.0;\nqreg q[0];\n",
     "register size 0 out of range"},
    {"register size above hard cap",
     "OPENQASM 2.0;\nqreg q[2000000];\n",
     "register size 2000000 out of range"},
    {"malformed operand index",
     "OPENQASM 2.0;\nqreg q[2];\nh q[1x];\n",
     "malformed operand index: '1x'"},
    {"unknown operand register",
     "OPENQASM 2.0;\nqreg q[2];\ncx r[0],q[1];\n",
     "unknown register 'r'"},
    {"duplicate operands",
     "OPENQASM 2.0;\nqreg q[2];\ncx q[1],q[1];\n",
     "duplicate operand q[1]"},
    {"trailing junk after operand",
     "OPENQASM 2.0;\nqreg q[2];\nh q[0]junk;\n",
     "trailing characters after operand"},
    {"trailing junk after qreg",
     "OPENQASM 2.0;\nqreg q[2]junk;\n",
     "trailing characters after qreg"},
    {"division by zero in angle",
     "OPENQASM 2.0;\nqreg q[1];\nrz(1/0) q[0];\n",
     "division by zero"},
    {"overflow to infinity in angle",
     "OPENQASM 2.0;\nqreg q[1];\nrz(1e308*100) q[0];\n",
     "non-finite value"},
    {"number literal beyond double range",
     "OPENQASM 2.0;\nqreg q[1];\nrz(1e99999) q[0];\n",
     "number literal out of double range"},
    {"unsupported gate",
     "OPENQASM 2.0;\nqreg q[1];\nbogus q[0];\n",
     "unsupported gate: bogus"},
    {"wrong parameter count",
     "OPENQASM 2.0;\nqreg q[1];\nrz(0.1,0.2) q[0];\n",
     "wrong parameter count"},
    {"wrong operand count",
     "OPENQASM 2.0;\nqreg q[2];\ncx q[0];\n",
     "wrong operand count"},
};

TEST(InputValidation, QasmDiagnosticsCarryLineContext)
{
    for (const auto &c : kQasmCases) {
        try {
            circuitFromQasm(c.text);
            FAIL() << c.name << ": expected ParseError";
        } catch (const ParseError &e) {
            const std::string what = e.what();
            EXPECT_EQ(e.kind(), ErrorKind::Parse) << c.name;
            EXPECT_EQ(e.where().source, "qasm") << c.name;
            EXPECT_GT(e.where().line, 0) << c.name << ": " << what;
            EXPECT_NE(what.find("qasm:"), std::string::npos)
                << c.name << ": " << what;
            EXPECT_NE(what.find(c.expect), std::string::npos)
                << c.name << ": " << what;
        }
    }
}

TEST(InputValidation, QasmMissingHeaderAndQreg)
{
    for (const char *text : {"qreg q[1];\nh q[0];\n", "OPENQASM 2.0;\n"}) {
        try {
            circuitFromQasm(text);
            FAIL() << "expected ParseError";
        } catch (const ParseError &e) {
            EXPECT_EQ(e.where().source, "qasm");
        }
    }
}

// ---------------------------------------------------------------------
// Angle-expression evaluator: byte-offset context, finite results only.

TEST(InputValidation, ExprDiagnosticsCarryByteOffsets)
{
    struct Case
    {
        const char *text;
        const char *expect;
    };
    const Case cases[] = {
        {"1/0", "division by zero"},
        {"1/(2-2)", "division by zero"},
        {"1e309", "number literal out of double range"},
        {"1e308*10", "non-finite value"},
        {"pi/", "expected number"},
        {"(1+2", "missing ')'"},
        {"1+2)", "trailing characters"},
        {"", "expected number"},
    };
    for (const auto &c : cases) {
        try {
            evalAngleExpr(c.text);
            FAIL() << "'" << c.text << "': expected ParseError";
        } catch (const ParseError &e) {
            EXPECT_EQ(e.where().source, "expr") << c.text;
            EXPECT_GE(e.where().offset, 0) << c.text;
            EXPECT_NE(std::string(e.what()).find(c.expect),
                      std::string::npos)
                << c.text << ": " << e.what();
        }
    }
}

TEST(InputValidation, ExprRejectsDeepNesting)
{
    // Unbounded recursion here used to walk the machine stack into a
    // crash; now it is a diagnostic (found by fuzz_expr).
    const std::string parens(100000, '(');
    EXPECT_THROW(evalAngleExpr(parens + "1"), ParseError);
    EXPECT_THROW(evalAngleExpr(std::string(100000, '-') + "1"), ParseError);
    // Shallow nesting still works.
    EXPECT_NEAR(evalAngleExpr("((((1+2))))"), 3.0, 1e-15);
    EXPECT_NEAR(evalAngleExpr("--1"), 1.0, 1e-15);
}

TEST(InputValidation, ExprResultsAreAlwaysFinite)
{
    for (const char *text :
         {"pi*2", "1e300", "-1e300", "1/3", "1e-300/10"}) {
        const double v = evalAngleExpr(text);
        EXPECT_TRUE(std::isfinite(v)) << text;
    }
}

// ---------------------------------------------------------------------
// Native circuit text: byte-offset diagnostics, validated results.

struct TextCase
{
    const char *name;
    const char *text;
    const char *expect;
};

const TextCase kTextCases[] = {
    {"missing header", "nonsense", "missing qubits header"},
    {"negative qubit count", "qubits -1", "out of range"},
    {"qubit count above cap", "qubits 2000000", "out of range"},
    {"unknown mnemonic", "qubits 2\nfoo 0", "unknown gate mnemonic: foo"},
    {"operand out of range", "qubits 1\ncx 0 1",
     "operand qubit 1 out of range"},
    {"negative operand", "qubits 2\ncx 0 -1",
     "operand qubit -1 out of range"},
    {"duplicate operands", "qubits 2\ncx 1 1", "duplicate operand qubit 1"},
    {"missing qubit operand", "qubits 1\nrz 0.5", "bad qubit operand"},
    {"bad parameter", "qubits 1\nrz abc 0", "bad parameter value"},
    {"nan parameter", "qubits 1\nrz nan 0", "bad parameter value"},
};

TEST(InputValidation, CircuitTextDiagnosticsCarryOffsets)
{
    for (const auto &c : kTextCases) {
        try {
            circuitFromText(c.text);
            FAIL() << c.name << ": expected ParseError";
        } catch (const ParseError &e) {
            EXPECT_EQ(e.where().source, "circuit-text") << c.name;
            EXPECT_GE(e.where().offset, 0) << c.name;
            EXPECT_NE(std::string(e.what()).find(c.expect),
                      std::string::npos)
                << c.name << ": " << e.what();
        }
    }
}

// ---------------------------------------------------------------------
// Cache-entry deserialization: semantically invalid payloads are
// misses (nullopt), never exceptions, never out-of-range layouts.

TEST(InputValidation, CacheEntryRejectsBadLayouts)
{
    const std::string body = "endheader\nqubits 2\nu3 0 0 0 0\n";
    const Circuit logical(2);
    // Layout atom out of range for the physical circuit.
    EXPECT_FALSE(compileResultFromText("geyser-cache-v1\n"
                                       "technique Baseline\n"
                                       "layout 0 99\nilayout 0 1\n" +
                                           body,
                                       logical)
                     .has_value());
    // Layout shorter than the logical qubit count.
    EXPECT_FALSE(compileResultFromText("geyser-cache-v1\n"
                                       "technique Baseline\n"
                                       "layout 0\nilayout 0 1\n" +
                                           body,
                                       logical)
                     .has_value());
    // Duplicate atom in the layout (not injective).
    EXPECT_FALSE(compileResultFromText("geyser-cache-v1\n"
                                       "technique Baseline\n"
                                       "layout 1 1\nilayout 0 1\n" +
                                           body,
                                       logical)
                     .has_value());
    // Valid circuit body, but cx is outside the native gate set the
    // pulse-depth computation accepts — used to throw through the
    // nullopt contract (found by fuzz_serialize; reproducer checked in
    // at tests/fuzz/regressions/serialize/nonnative_gate_in_body).
    EXPECT_FALSE(compileResultFromText("geyser-cache-v1\n"
                                       "technique Baseline\n"
                                       "layout 0 1\nilayout 0 1\n"
                                       "endheader\nqubits 2\n"
                                       "u3 0 0 0 0\ncx 0 1\n",
                                       logical)
                     .has_value());
}

TEST(InputValidation, CacheEntryRejectsMalformedHeaders)
{
    const Circuit logical(1);
    for (const char *text : {
             "geyser-cache-v1\ntechnique Bogus\nendheader\nqubits 1\n",
             "geyser-cache-v1\nswaps -3\nlayout 0\nilayout 0\n"
             "endheader\nqubits 1\n",
             "geyser-cache-v1\nswaps xyz\n",
             "geyser-cache-v1\ntechnique Baseline\n",  // No endheader.
             "geyser-cache-v1\nlayout 0\nilayout 0\nendheader\n"
             "qubits 1\ncx 0 1\n",  // Invalid circuit body.
         }) {
        EXPECT_FALSE(compileResultFromText(text, logical).has_value())
            << text;
    }
}

TEST(InputValidation, ProjectToLogicalRejectsBadLayouts)
{
    const Distribution phys(4, 0.25);
    EXPECT_THROW(projectToLogical(phys, {0, 7}, 2, 2), ValidationError);
    EXPECT_THROW(projectToLogical(phys, {0}, 2, 2), ValidationError);
    EXPECT_THROW(projectToLogical(phys, {0, -1}, 2, 2), ValidationError);
    EXPECT_THROW(projectToLogical(Distribution(7), {0}, 1, 3),
                 ValidationError);
    // A well-formed projection still works.
    const Distribution ok = projectToLogical(phys, {0, 1}, 2, 2);
    EXPECT_NEAR(ok[0] + ok[1] + ok[2] + ok[3], 1.0, 1e-12);
}

// ---------------------------------------------------------------------
// Circuit::validate() invariants.

TEST(InputValidation, ValidateAcceptsWellFormedCircuits)
{
    const Circuit c = qftBenchmark(4);
    EXPECT_FALSE(c.validationError().has_value());
    EXPECT_NO_THROW(c.validate());
    EXPECT_NO_THROW(Circuit().validate());  // Empty circuit is valid.
}

TEST(InputValidation, ValidateCatchesDuplicateOperands)
{
    Circuit c(2);
    c.cx(0, 1);
    c.gates()[0].setQubit(1, 0);  // cx q0,q0 behind append's back.
    const auto why = c.validationError();
    ASSERT_TRUE(why.has_value());
    EXPECT_NE(why->find("duplicate operand"), std::string::npos) << *why;
    EXPECT_THROW(c.validate(), ValidationError);
}

TEST(InputValidation, ValidateCatchesNonFiniteAngles)
{
    Circuit c(1);
    c.rz(0, std::numeric_limits<double>::quiet_NaN());
    const auto why = c.validationError();
    ASSERT_TRUE(why.has_value());
    EXPECT_NE(why->find("non-finite parameter"), std::string::npos) << *why;
}

TEST(InputValidation, ValidateCatchesOutOfRangeOperands)
{
    Circuit c(3);
    c.cx(0, 2);
    c.setNumQubits(1);  // Shrink the register under the gate.
    const auto why = c.validationError();
    ASSERT_TRUE(why.has_value());
    EXPECT_NE(why->find("out of range"), std::string::npos) << *why;

    Circuit negative;
    negative.setNumQubits(-1);
    EXPECT_TRUE(negative.validationError().has_value());
}

TEST(InputValidation, ValidateTagsDiagnosticWithSource)
{
    Circuit c(1);
    c.rz(0, std::numeric_limits<double>::infinity());
    try {
        c.validate("cache-entry");
        FAIL() << "expected ValidationError";
    } catch (const ValidationError &e) {
        EXPECT_EQ(e.where().source, "cache-entry");
        EXPECT_NE(std::string(e.what()).find("cache-entry"),
                  std::string::npos);
    }
}

TEST(InputValidation, CompileRejectsInvalidCircuits)
{
    Circuit c(2);
    c.rx(0, std::numeric_limits<double>::quiet_NaN());
    EXPECT_THROW(compileBaseline(c), ValidationError);
    EXPECT_THROW(compile(Technique::Geyser, c), ValidationError);
}

// ---------------------------------------------------------------------
// Round-trip properties: validate() holds after parse → emit → parse,
// and a second round trip is gate-for-gate stable.

TEST(InputValidation, QasmRoundTripPreservesValidity)
{
    const Circuit originals[] = {
        qftBenchmark(4),
        adderBenchmark(1, true),
        qaoaBenchmark(4, 4, 2, 9),
        verify::randomLogicalCircuit(5, 40, 12345),
    };
    for (const Circuit &original : originals) {
        const Circuit first = circuitFromQasm(circuitToQasm(original));
        EXPECT_NO_THROW(first.validate());
        EXPECT_EQ(first.numQubits(), original.numQubits());
        // After one trip the gate set is closed under export (CCZ has
        // been rewritten); the second trip must be exact.
        const Circuit second = circuitFromQasm(circuitToQasm(first));
        EXPECT_NO_THROW(second.validate());
        ASSERT_EQ(second.size(), first.size());
        for (size_t i = 0; i < first.size(); ++i)
            EXPECT_TRUE(second.gates()[i] == first.gates()[i]) << i;
    }
}

TEST(InputValidation, TextRoundTripPreservesValidity)
{
    for (const uint64_t seed : {1u, 2u, 3u, 4u}) {
        const Circuit original = verify::randomLogicalCircuit(6, 60, seed);
        const Circuit back = circuitFromText(circuitToText(original));
        EXPECT_NO_THROW(back.validate());
        ASSERT_EQ(back.size(), original.size());
        EXPECT_EQ(back.numQubits(), original.numQubits());
        for (size_t i = 0; i < original.size(); ++i)
            EXPECT_TRUE(original.gates()[i] == back.gates()[i]) << i;
    }
}

}  // namespace
}  // namespace geyser
