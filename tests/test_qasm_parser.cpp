/**
 * @file
 * OpenQASM 2.0 importer tests: round trips with the exporter,
 * expression evaluation, and diagnostics on malformed input.
 */
#include <gtest/gtest.h>

#include "algos/algos.hpp"
#include "io/qasm_parser.hpp"
#include "io/serialize.hpp"
#include "sim/unitary_sim.hpp"

namespace geyser {
namespace {

TEST(QasmParser, ParsesMinimalProgram)
{
    const Circuit c = circuitFromQasm(
        "OPENQASM 2.0;\n"
        "include \"qelib1.inc\";\n"
        "qreg q[2];\n"
        "h q[0];\n"
        "cx q[0],q[1];\n");
    EXPECT_EQ(c.numQubits(), 2);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c.gates()[0].kind(), GateKind::H);
    EXPECT_EQ(c.gates()[1].kind(), GateKind::CX);
}

TEST(QasmParser, EvaluatesAngleExpressions)
{
    const Circuit c = circuitFromQasm(
        "OPENQASM 2.0;\nqreg q[1];\n"
        "rz(pi/2) q[0];\n"
        "rx(-pi/4) q[0];\n"
        "u3(2*pi/3, 0.25, -(1+2)*0.5) q[0];\n"
        "p(1e-3) q[0];\n");
    EXPECT_NEAR(c.gates()[0].param(0), kPi / 2, 1e-15);
    EXPECT_NEAR(c.gates()[1].param(0), -kPi / 4, 1e-15);
    EXPECT_NEAR(c.gates()[2].param(0), 2 * kPi / 3, 1e-15);
    EXPECT_NEAR(c.gates()[2].param(2), -1.5, 1e-15);
    EXPECT_NEAR(c.gates()[3].param(0), 1e-3, 1e-18);
}

TEST(QasmParser, IgnoresCommentsMeasureAndCreg)
{
    const Circuit c = circuitFromQasm(
        "OPENQASM 2.0;\n"
        "qreg q[2];\ncreg c[2];\n"
        "// a comment; with a semicolon\n"
        "x q[0];\n"
        "barrier q[0],q[1];\n"
        "measure q[0] -> c[0];\n");
    EXPECT_EQ(c.size(), 1u);
    EXPECT_EQ(c.gates()[0].kind(), GateKind::X);
}

TEST(QasmParser, AcceptsU1AndCu1Aliases)
{
    const Circuit c = circuitFromQasm(
        "OPENQASM 2.0;\nqreg q[2];\nu1(0.5) q[0];\ncu1(0.25) q[0],q[1];\n");
    EXPECT_EQ(c.gates()[0].kind(), GateKind::P);
    EXPECT_EQ(c.gates()[1].kind(), GateKind::CP);
}

TEST(QasmParser, RoundTripsThroughExporter)
{
    for (const auto make :
         {+[] { return adderBenchmark(1, true); },
          +[] { return qftBenchmark(4); },
          +[] { return qaoaBenchmark(4, 4, 2, 9); }}) {
        const Circuit original = make();
        const Circuit back = circuitFromQasm(circuitToQasm(original));
        EXPECT_EQ(back.numQubits(), original.numQubits());
        EXPECT_LT(circuitHsd(original, back), 1e-9);
    }
}

TEST(QasmParser, RoundTripsCczViaToffoliForm)
{
    Circuit c(3);
    c.ccz(0, 1, 2);
    const Circuit back = circuitFromQasm(circuitToQasm(c));
    // The exporter writes h-ccx-h; semantics must survive.
    EXPECT_LT(circuitHsd(c, back), 1e-9);
}

TEST(QasmParser, DiagnosticsCarryLineNumbers)
{
    try {
        circuitFromQasm("OPENQASM 2.0;\nqreg q[1];\nbogus q[0];\n");
        FAIL() << "expected parse failure";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("qasm:3"), std::string::npos)
            << e.what();
    }
}

TEST(QasmParser, RejectsMalformedPrograms)
{
    EXPECT_THROW(circuitFromQasm("qreg q[1];\nh q[0];\n"),
                 std::invalid_argument);  // Missing header.
    EXPECT_THROW(circuitFromQasm("OPENQASM 2.0;\nh q[0];\n"),
                 std::invalid_argument);  // Missing qreg.
    EXPECT_THROW(circuitFromQasm("OPENQASM 2.0;\nqreg q[2];\nh q0;\n"),
                 std::invalid_argument);  // Malformed operand.
    EXPECT_THROW(circuitFromQasm(
                     "OPENQASM 2.0;\nqreg q[2];\nrz(0.1, 0.2) q[0];\n"),
                 std::invalid_argument);  // Wrong parameter count.
    EXPECT_THROW(circuitFromQasm(
                     "OPENQASM 2.0;\nqreg q[2];\ncx q[0];\n"),
                 std::invalid_argument);  // Wrong operand count.
    EXPECT_THROW(circuitFromQasm(
                     "OPENQASM 2.0;\nqreg q[1];\nrz(pi/) q[0];\n"),
                 std::invalid_argument);  // Bad expression.
}

TEST(QasmParser, RejectsGateDefinitions)
{
    EXPECT_THROW(circuitFromQasm("OPENQASM 2.0;\nqreg q[1];\n"
                                 "gate foo a { h a; }\nfoo q[0];\n"),
                 std::invalid_argument);
}

}  // namespace
}  // namespace geyser
