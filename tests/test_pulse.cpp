/**
 * @file
 * Pulse-lowering tests: pulse counts per gate match paper Fig 3,
 * ordering of control/target pulses, schedule consistency.
 */
#include <gtest/gtest.h>

#include "pulse/pulse.hpp"

namespace geyser {
namespace {

TEST(Pulse, U3LowersToOneRamanPulse)
{
    Circuit c(1);
    c.u3(0, 0.1, 0.2, 0.3);
    const auto program = lowerToPulses(c);
    ASSERT_EQ(program.pulses.size(), 1u);
    EXPECT_EQ(program.pulses[0].kind, PulseKind::Raman);
    EXPECT_EQ(program.pulses[0].atom, 0);
    EXPECT_EQ(program.makespan, 1);
}

TEST(Pulse, CzLowersToPi2PiPiSequence)
{
    // Fig 3(a): pi on the control, 2*pi on the target, pi on the control.
    Circuit c(2);
    c.cz(0, 1);
    const auto program = lowerToPulses(c);
    ASSERT_EQ(program.pulses.size(), 3u);
    EXPECT_EQ(program.pulses[0].kind, PulseKind::RydbergPi);
    EXPECT_EQ(program.pulses[0].atom, 0);
    EXPECT_EQ(program.pulses[1].kind, PulseKind::Rydberg2Pi);
    EXPECT_EQ(program.pulses[1].atom, 1);
    EXPECT_EQ(program.pulses[2].kind, PulseKind::RydbergPi);
    EXPECT_EQ(program.pulses[2].atom, 0);
    // Serial within the gate window.
    EXPECT_EQ(program.pulses[0].startTime, 0);
    EXPECT_EQ(program.pulses[1].startTime, 1);
    EXPECT_EQ(program.pulses[2].startTime, 2);
}

TEST(Pulse, CczLowersToFivePulses)
{
    // Fig 3(b): pi, pi, 2*pi, pi, pi.
    Circuit c(3);
    c.ccz(0, 1, 2);
    const auto program = lowerToPulses(c);
    ASSERT_EQ(program.pulses.size(), 5u);
    EXPECT_EQ(program.countKind(PulseKind::RydbergPi), 4);
    EXPECT_EQ(program.countKind(PulseKind::Rydberg2Pi), 1);
    EXPECT_EQ(program.pulses[2].kind, PulseKind::Rydberg2Pi);
    EXPECT_EQ(program.pulses[2].atom, 2);
    EXPECT_EQ(program.makespan, 5);
}

TEST(Pulse, TotalPulsesMatchCircuitMetric)
{
    Circuit c(3);
    c.u3(0, 1, 1, 1);
    c.cz(0, 1);
    c.ccz(0, 1, 2);
    c.u3(2, 1, 1, 1);
    const auto program = lowerToPulses(c);
    EXPECT_EQ(static_cast<long>(program.pulses.size()), c.totalPulses());
}

TEST(Pulse, MakespanMatchesScheduleDepth)
{
    Circuit c(4);
    c.cz(0, 1);
    c.cz(2, 3);
    c.cz(1, 2);
    const auto sched = scheduleAsap(c);
    const auto program = lowerToPulses(c, sched);
    EXPECT_EQ(program.makespan, sched.makespan);
}

TEST(Pulse, RestrictionAwareScheduleCarriesOver)
{
    const auto topo = Topology::makeTriangular(2, 2);
    Circuit c(4);
    c.cz(0, 1);
    c.u3(2, 0, 0, 0);
    const auto sched = scheduleRestrictionAware(c, topo);
    const auto program = lowerToPulses(c, sched);
    // The restricted U3 fires only after the CZ's window.
    EXPECT_EQ(program.pulses.back().startTime, 3);
}

TEST(Pulse, RejectsLogicalCircuits)
{
    Circuit c(1);
    c.h(0);
    EXPECT_THROW(lowerToPulses(c), std::invalid_argument);
}

TEST(Pulse, ToStringListsEveryPulse)
{
    Circuit c(2);
    c.cz(0, 1);
    const auto s = lowerToPulses(c).toString();
    EXPECT_NE(s.find("2pi"), std::string::npos);
    EXPECT_NE(s.find("makespan"), std::string::npos);
}

}  // namespace
}  // namespace geyser
