/**
 * @file
 * Edge-case coverage across modules: serialization failure paths,
 * scheduler corner cases, empty circuits through the pipeline.
 */
#include <gtest/gtest.h>

#include "circuit/draw.hpp"
#include "circuit/schedule.hpp"
#include "geyser/pipeline.hpp"
#include "io/serialize.hpp"

namespace geyser {
namespace {

TEST(EdgeCases, SaveCompileResultToBadPathThrows)
{
    CompileResult result;
    result.physical = Circuit(1);
    EXPECT_THROW(saveCompileResult("/nonexistent_dir/x.txt", result),
                 std::runtime_error);
}

TEST(EdgeCases, EmptyCircuitSchedulesToZero)
{
    Circuit c(3);
    EXPECT_EQ(depthPulses(c), 0);
    const auto sched = scheduleAsap(c);
    EXPECT_TRUE(sched.start.empty());
}

TEST(EdgeCases, EmptyCircuitThroughPipeline)
{
    Circuit c(2);
    const auto base = compileBaseline(c);
    EXPECT_EQ(base.stats.totalPulses, 0);
    EXPECT_NEAR(idealTvd(base), 0.0, 1e-12);
    const auto opti = compileOptiMap(c);
    EXPECT_EQ(opti.stats.totalPulses, 0);
}

TEST(EdgeCases, SingleGateCircuitThroughGeyser)
{
    Circuit c(2);
    c.h(0);
    const auto gey = compileGeyser(c);
    EXPECT_TRUE(gey.physical.isPhysical());
    EXPECT_LE(gey.stats.totalPulses, 1);
    EXPECT_NEAR(idealTvd(gey), 0.0, 1e-9);
}

TEST(EdgeCases, DrawEmptyCircuit)
{
    Circuit c(2);
    const std::string art = drawCircuit(c);
    EXPECT_NE(art.find("q0:"), std::string::npos);
    EXPECT_NE(art.find("q1:"), std::string::npos);
}

TEST(EdgeCases, CircuitTextRoundTripEmpty)
{
    Circuit c(4);
    const Circuit back = circuitFromText(circuitToText(c));
    EXPECT_EQ(back.numQubits(), 4);
    EXPECT_TRUE(back.empty());
}

TEST(EdgeCases, QasmExportEmptyCircuit)
{
    const std::string qasm = circuitToQasm(Circuit(2));
    EXPECT_NE(qasm.find("qreg q[2];"), std::string::npos);
}

TEST(EdgeCases, SchedulerHandlesInterleavedOneAndThreeQubit)
{
    Circuit c(5);
    c.ccz(0, 1, 2);
    c.u3(3, 0, 0, 0);
    c.ccz(2, 3, 4);
    const auto sched = scheduleAsap(c);
    EXPECT_EQ(sched.start[0], 0);
    EXPECT_EQ(sched.start[1], 0);  // Independent qubit: parallel.
    EXPECT_EQ(sched.start[2], 5);  // Shares qubits 2 and 3.
    EXPECT_EQ(sched.makespan, 10);
}

}  // namespace
}  // namespace geyser
