/**
 * @file
 * Fuzz target: the angle-expression evaluator. Arbitrary bytes must
 * either be rejected with a ParseError carrying `expr@<offset>` context
 * or evaluate to a finite double, deterministically. Deep nesting and
 * overflow literals historically walked the stack or produced inf/NaN
 * angles; both classes are regression-guarded here.
 */
#include <cmath>
#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "io/qasm_parser.hpp"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    const std::string text(reinterpret_cast<const char *>(data), size);
    double value = 0.0;
    try {
        value = geyser::evalAngleExpr(text);
    } catch (const geyser::ParseError &e) {
        if (e.where().source != "expr")
            __builtin_trap();  // Wrong context tag on the diagnostic.
        return 0;
    }
    if (!std::isfinite(value))
        __builtin_trap();  // The finite-or-throw contract was violated.
    if (geyser::evalAngleExpr(text) != value)
        __builtin_trap();  // Evaluation must be deterministic.
    return 0;
}
