/**
 * @file
 * Standalone fuzzing driver for targets written against the libFuzzer
 * ABI (`LLVMFuzzerTestOneInput`). The container toolchain is GCC, which
 * has no `-fsanitize=fuzzer`; when CMake detects that, each fuzz target
 * is linked against this driver instead, so the same target sources run
 * everywhere — under real libFuzzer when clang is available, under this
 * mutating replay loop otherwise.
 *
 * Command line (libFuzzer-compatible subset):
 *   fuzz_target [flags] [corpus file or directory]...
 *
 *   -runs=N             mutation executions after corpus replay (0 = replay
 *                       only, the ctest default)
 *   -max_total_time=S   stop mutating after S seconds
 *   -seed=N             RNG seed (deterministic; default 1)
 *   -artifact_prefix=P  where crashing inputs are written (default ./)
 *
 * Unknown `-flag=value` arguments are ignored for drop-in compatibility
 * with libFuzzer invocations in CI.
 *
 * Crash handling: before every execution the input is copied into a
 * preallocated buffer; SIGSEGV/SIGABRT/SIGFPE/SIGILL/SIGBUS handlers and
 * std::set_terminate write it to `<artifact_prefix>crash-<fnv64>` using
 * only async-signal-safe calls, then exit non-zero — CI uploads the
 * artifact and the run fails.
 */
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *data, size_t size);

namespace {

constexpr size_t kMaxInputSize = 1 << 16;

// --- Crash artifact plumbing (async-signal-safe only). ---------------

char g_current[kMaxInputSize];
size_t g_currentSize = 0;
char g_artifactPath[4096] = "./crash-0000000000000000";
size_t g_prefixLen = 2;  // Length of the "./" prefix in g_artifactPath.

uint64_t
fnv1a64(const char *data, size_t len)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < len; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 1099511628211ull;
    }
    return h;
}

/** Stamp the hash of the current input into the artifact path. */
void
stampArtifactName()
{
    static const char hex[] = "0123456789abcdef";
    uint64_t h = fnv1a64(g_current, g_currentSize);
    char *out = g_artifactPath + g_prefixLen + 6;  // Past "crash-".
    for (int i = 15; i >= 0; --i) {
        out[i] = hex[h & 0xf];
        h >>= 4;
    }
}

void
writeArtifact()
{
    stampArtifactName();
    const int fd = ::open(g_artifactPath, O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0)
        return;
    size_t off = 0;
    while (off < g_currentSize) {
        const ssize_t n =
            ::write(fd, g_current + off, g_currentSize - off);
        if (n <= 0)
            break;
        off += static_cast<size_t>(n);
    }
    ::close(fd);
}

void
crashHandler(int sig)
{
    // Best-effort: save the input, report, die with the default action
    // so the exit status still reflects the signal.
    writeArtifact();
    constexpr char msg[] = "\n== crash: input saved to artifact ==\n";
    [[maybe_unused]] const ssize_t n =
        ::write(2, msg, sizeof(msg) - 1);
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

[[noreturn]] void
terminateHandler()
{
    writeArtifact();
    std::fprintf(stderr,
                 "== uncaught exception: input saved to %s ==\n",
                 g_artifactPath);
    std::_Exit(77);
}

void
installHandlers()
{
    for (const int sig : {SIGSEGV, SIGABRT, SIGFPE, SIGILL, SIGBUS})
        ::signal(sig, crashHandler);
    std::set_terminate(terminateHandler);
}

// --- Deterministic RNG + mutations. ----------------------------------

struct Rng
{
    uint64_t state;
    uint64_t next()
    {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    }
    size_t below(size_t n) { return n == 0 ? 0 : next() % n; }
};

/** Grammar fragments that matter to these parsers. */
const char *const kDictionary[] = {
    "OPENQASM 2.0;", "qreg q[", "];",     "cx q[",  "rz(",  "pi",
    "1/0",           "1e999",   "((((",   "----",   "-1",   "qubits ",
    "u3 ",           "ccz ",    "layout", "endheader\n",    "technique ",
    "geyser-cache-v1\n",        "0",      "9999999999",     ",q[",
};

void
mutate(std::string &data, Rng &rng,
       const std::vector<std::string> &corpus)
{
    const int rounds = 1 + static_cast<int>(rng.below(4));
    for (int r = 0; r < rounds; ++r) {
        switch (rng.below(7)) {
          case 0:  // Flip one bit.
            if (!data.empty())
                data[rng.below(data.size())] ^=
                    static_cast<char>(1u << rng.below(8));
            break;
          case 1:  // Overwrite one byte.
            if (!data.empty())
                data[rng.below(data.size())] =
                    static_cast<char>(rng.below(256));
            break;
          case 2:  // Insert one byte.
            data.insert(rng.below(data.size() + 1), 1,
                        static_cast<char>(rng.below(256)));
            break;
          case 3: {  // Erase a short range.
            if (data.empty())
                break;
            const size_t at = rng.below(data.size());
            data.erase(at, 1 + rng.below(8));
            break;
          }
          case 4: {  // Duplicate a short range.
            if (data.empty())
                break;
            const size_t at = rng.below(data.size());
            const size_t len =
                std::min(data.size() - at, 1 + rng.below(16));
            data.insert(rng.below(data.size() + 1),
                        data.substr(at, len));
            break;
          }
          case 5: {  // Insert a dictionary token.
            const size_t n = sizeof(kDictionary) / sizeof(kDictionary[0]);
            data.insert(rng.below(data.size() + 1),
                        kDictionary[rng.below(n)]);
            break;
          }
          default: {  // Splice with another corpus input.
            if (corpus.empty())
                break;
            const std::string &other = corpus[rng.below(corpus.size())];
            if (other.empty())
                break;
            data = data.substr(0, rng.below(data.size() + 1)) +
                   other.substr(rng.below(other.size()));
            break;
          }
        }
    }
    if (data.size() > kMaxInputSize)
        data.resize(kMaxInputSize);
}

// --- Corpus + execution. ----------------------------------------------

int
runOne(const std::string &input)
{
    g_currentSize = std::min(input.size(), kMaxInputSize);
    std::memcpy(g_current, input.data(), g_currentSize);
    return LLVMFuzzerTestOneInput(
        reinterpret_cast<const uint8_t *>(input.data()), input.size());
}

void
loadCorpus(const std::string &path, std::vector<std::string> &out)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        std::vector<std::string> files;
        for (fs::directory_iterator it(path, ec), end; !ec && it != end;
             it.increment(ec))
            if (it->is_regular_file())
                files.push_back(it->path().string());
        // Directory order is filesystem-dependent; sort for determinism.
        std::sort(files.begin(), files.end());
        for (const std::string &f : files)
            loadCorpus(f, out);
        return;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "warning: cannot read corpus input %s\n",
                     path.c_str());
        return;
    }
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (data.size() > kMaxInputSize)
        data.resize(kMaxInputSize);
    out.push_back(std::move(data));
}

long long
flagValue(const std::string &arg, const char *name)
{
    const std::string prefix = std::string("-") + name + "=";
    if (arg.compare(0, prefix.size(), prefix) != 0)
        return -1;
    return std::atoll(arg.c_str() + prefix.size());
}

}  // namespace

int
main(int argc, char **argv)
{
    long long runs = 0, maxTotalTime = 0;
    uint64_t seed = 1;
    std::vector<std::string> corpus;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (long long v; (v = flagValue(arg, "runs")) >= 0)
            runs = v;
        else if ((v = flagValue(arg, "max_total_time")) >= 0)
            maxTotalTime = v;
        else if ((v = flagValue(arg, "seed")) >= 0)
            seed = static_cast<uint64_t>(v);
        else if (arg.compare(0, 17, "-artifact_prefix=") == 0) {
            const std::string prefix = arg.substr(17);
            if (prefix.size() + 24 < sizeof(g_artifactPath)) {
                std::snprintf(g_artifactPath, sizeof(g_artifactPath),
                              "%scrash-0000000000000000", prefix.c_str());
                g_prefixLen = prefix.size();
            }
        } else if (!arg.empty() && arg[0] == '-') {
            // Ignore other libFuzzer flags for drop-in compatibility.
        } else {
            loadCorpus(arg, corpus);
        }
    }

    installHandlers();

    long long execs = 0;
    const auto start = std::chrono::steady_clock::now();
    for (const std::string &input : corpus) {
        runOne(input);
        ++execs;
    }
    std::fprintf(stderr, "replayed %zu corpus inputs\n", corpus.size());

    if (runs > 0 || maxTotalTime > 0) {
        Rng rng{seed != 0 ? seed : 1};
        const auto deadline =
            start + std::chrono::seconds(maxTotalTime > 0 ? maxTotalTime
                                                          : 1 << 30);
        long long mutated = 0;
        while ((runs == 0 || mutated < runs) &&
               (maxTotalTime == 0 ||
                std::chrono::steady_clock::now() < deadline)) {
            std::string input =
                corpus.empty() ? std::string()
                               : corpus[rng.below(corpus.size())];
            mutate(input, rng, corpus);
            runOne(input);
            ++execs;
            ++mutated;
        }
    }

    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::fprintf(stderr, "done: %lld execs in %.1fs (%.0f/s), no crashes\n",
                 execs, secs, secs > 0 ? execs / secs : 0.0);
    return 0;
}
