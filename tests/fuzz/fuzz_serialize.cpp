/**
 * @file
 * Fuzz target: the framing layer and every text deserializer that reads
 * cache entries. Arbitrary bytes exercise four contracts:
 *   1. unframeWithChecksum never crashes and never throws;
 *   2. frame → unframe is the identity on any payload;
 *   3. circuitFromText either raises a taxonomy error with byte-offset
 *      context or yields a circuit that validates and round-trips
 *      gate-for-gate through circuitToText;
 *   4. compileResultFromText / composeResultFromText treat malformed or
 *      semantically inconsistent payloads as nullopt, never a crash,
 *      and anything they accept passes Circuit::validate().
 */
#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "geyser/pipeline.hpp"
#include "io/framing.hpp"
#include "io/serialize.hpp"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    const std::string text(reinterpret_cast<const char *>(data), size);

    // Contract 1: arbitrary bytes through the unframer.
    (void)geyser::io::unframeWithChecksum(text);

    // Contract 2: frame → unframe identity.
    const auto back =
        geyser::io::unframeWithChecksum(geyser::io::frameWithChecksum(text));
    if (!back || *back != text)
        __builtin_trap();

    // Contract 3: the native circuit deserializer.
    try {
        const geyser::Circuit c = geyser::circuitFromText(text);
        c.validate();
        const geyser::Circuit again =
            geyser::circuitFromText(geyser::circuitToText(c));
        if (again.size() != c.size() ||
            again.numQubits() != c.numQubits())
            __builtin_trap();
        for (size_t i = 0; i < c.size(); ++i)
            if (!(again.gates()[i] == c.gates()[i]))
                __builtin_trap();
    } catch (const geyser::Error &) {
        // Structured rejection is fine.
    }

    // Contract 4: cache-entry deserializers never throw on hostile
    // payloads, and accepted results carry validated circuits.
    const geyser::Circuit logical(2);
    if (const auto result = geyser::compileResultFromText(text, logical))
        result->physical.validate();
    if (const auto compose = geyser::composeResultFromText(text))
        compose->circuit.validate();
    return 0;
}
