/**
 * @file
 * Fuzz target: the OpenQASM 2.0 parser. Arbitrary bytes must either be
 * rejected with a taxonomy error carrying `qasm:<line>:` context, or be
 * accepted as a circuit that (a) passes Circuit::validate() and (b)
 * survives an emit → reparse round trip with the qubit count intact.
 * Any other exception type, crash, or sanitizer report is a finding.
 */
#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "io/qasm_parser.hpp"
#include "io/serialize.hpp"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    const std::string text(reinterpret_cast<const char *>(data), size);
    geyser::Circuit circuit;
    try {
        circuit = geyser::circuitFromQasm(text);
    } catch (const geyser::Error &) {
        return 0;  // Structured rejection is the expected outcome.
    }
    // Accepted inputs are on the trusted side of the boundary now:
    // validate() must hold and the round trip must stay parseable.
    circuit.validate();
    const geyser::Circuit back =
        geyser::circuitFromQasm(geyser::circuitToQasm(circuit));
    back.validate();
    if (back.numQubits() != circuit.numQubits())
        __builtin_trap();
    return 0;
}
