/**
 * @file
 * OptiMap optimization-pass tests: fusion, identity elimination,
 * commutation-aware CZ cancellation, and unitary preservation.
 */
#include <gtest/gtest.h>

#include "sim/unitary_sim.hpp"
#include "transpile/basis.hpp"
#include "transpile/passes.hpp"

namespace geyser {
namespace {

TEST(FusePass, MergesAdjacentU3Runs)
{
    Circuit c(1);
    c.u3(0, 0.3, 0.1, 0.2);
    c.u3(0, 1.1, -0.4, 0.6);
    c.u3(0, 0.9, 0.0, 0.0);
    Circuit fused = c;
    EXPECT_TRUE(fuseU3Pass(fused));
    EXPECT_EQ(fused.size(), 1u);
    EXPECT_LT(circuitHsd(c, fused), 1e-10);
}

TEST(FusePass, DropsIdentityPairs)
{
    Circuit c(1);
    c.u3(0, kPi / 2, 0, kPi);  // H
    c.u3(0, kPi / 2, 0, kPi);  // H -> identity
    Circuit fused = c;
    fuseU3Pass(fused, true);
    EXPECT_EQ(fused.size(), 0u);
}

TEST(FusePass, KeepsIdentityWhenAskedTo)
{
    Circuit c(1);
    c.u3(0, kPi / 2, 0, kPi);
    c.u3(0, kPi / 2, 0, kPi);
    Circuit fused = c;
    fuseU3Pass(fused, false);
    EXPECT_EQ(fused.size(), 1u);
}

TEST(FusePass, DoesNotFuseAcrossEntanglers)
{
    Circuit c(2);
    c.u3(0, 0.4, 0, 0);
    c.cz(0, 1);
    c.u3(0, -0.4, 0, 0);
    Circuit fused = c;
    fuseU3Pass(fused);
    EXPECT_EQ(fused.countKind(GateKind::U3), 2);
    EXPECT_LT(circuitHsd(c, fused), 1e-10);
}

TEST(FusePass, FusesAroundNonSharedQubits)
{
    // Gates on qubit 1 fuse even with a CZ on qubits 0 and 2 between.
    Circuit c(3);
    c.u3(1, 0.2, 0, 0);
    c.cz(0, 2);
    c.u3(1, 0.3, 0, 0);
    Circuit fused = c;
    fuseU3Pass(fused);
    EXPECT_EQ(fused.countKind(GateKind::U3), 1);
    EXPECT_LT(circuitHsd(c, fused), 1e-10);
}

TEST(FusePass, RejectsLogicalCircuits)
{
    Circuit c(1);
    c.h(0);
    EXPECT_THROW(fuseU3Pass(c), std::invalid_argument);
}

TEST(CancelCz, AdjacentPairCancels)
{
    Circuit c(2);
    c.cz(0, 1);
    c.cz(0, 1);
    EXPECT_TRUE(cancelCzPass(c));
    EXPECT_EQ(c.size(), 0u);
}

TEST(CancelCz, ReversedOperandOrderStillCancels)
{
    Circuit c(2);
    c.cz(0, 1);
    c.cz(1, 0);
    cancelCzPass(c);
    EXPECT_EQ(c.size(), 0u);
}

TEST(CancelCz, DiagonalU3Commutes)
{
    Circuit c(2);
    c.cz(0, 1);
    c.u3(0, 0.0, 0.0, 0.7);  // Diagonal (theta = 0).
    c.cz(0, 1);
    Circuit orig = c;
    EXPECT_TRUE(cancelCzPass(c));
    EXPECT_EQ(c.countKind(GateKind::CZ), 0);
    EXPECT_EQ(c.countKind(GateKind::U3), 1);
    EXPECT_LT(circuitHsd(orig, c), 1e-10);
}

TEST(CancelCz, OtherPairCzCommutes)
{
    // CZ(0,1) CZ(1,2) CZ(0,1): all diagonal, outer pair cancels.
    Circuit c(3);
    c.cz(0, 1);
    c.cz(1, 2);
    c.cz(0, 1);
    Circuit orig = c;
    EXPECT_TRUE(cancelCzPass(c));
    EXPECT_EQ(c.countKind(GateKind::CZ), 1);
    EXPECT_LT(circuitHsd(orig, c), 1e-10);
}

TEST(CancelCz, NonDiagonalGateBlocksCancellation)
{
    Circuit c(2);
    c.cz(0, 1);
    c.u3(0, kPi / 2, 0, kPi);  // H: not diagonal.
    c.cz(0, 1);
    EXPECT_FALSE(cancelCzPass(c));
    EXPECT_EQ(c.countKind(GateKind::CZ), 2);
}

TEST(Optimize, ReducesHCzHSandwich)
{
    // CX CX = I: two lowered CXs collapse entirely.
    Circuit c(2);
    c.cx(0, 1);
    c.cx(0, 1);
    Circuit phys = decomposeToBasis(c);
    EXPECT_EQ(phys.size(), 6u);
    optimize(phys);
    EXPECT_EQ(phys.size(), 0u);
}

TEST(Optimize, PreservesUnitaryOnMixedCircuit)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.t(1);
    c.cx(0, 1);
    c.rzz(1, 2, 0.7);
    c.h(0);
    const Circuit phys = decomposeToBasis(c);
    Circuit opt = phys;
    optimize(opt);
    EXPECT_LE(opt.totalPulses(), phys.totalPulses());
    EXPECT_LT(circuitHsd(phys, opt), 1e-9);
}

TEST(Optimize, SubstantialReductionOnTrotterPattern)
{
    // Consecutive RZZ on the same pair produce cancelling CX pairs.
    Circuit c(2);
    for (int i = 0; i < 10; ++i)
        c.rzz(0, 1, 0.1);
    Circuit phys = decomposeToBasis(c);
    const long before = phys.totalPulses();
    optimize(phys);
    EXPECT_LT(phys.totalPulses(), before / 3);
    Circuit ref = decomposeToBasis(c);
    EXPECT_LT(circuitHsd(ref, phys), 1e-9);
}

TEST(Optimize, IdempotentAtFixedPoint)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.ccx(0, 1, 2);
    Circuit opt = decomposeToBasis(c);
    optimize(opt);
    Circuit again = opt;
    optimize(again);
    EXPECT_EQ(opt.size(), again.size());
}

}  // namespace
}  // namespace geyser
