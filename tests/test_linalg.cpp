/**
 * @file
 * Unit tests for the dense complex matrix substrate.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"

namespace geyser {
namespace {

TEST(Matrix, IdentityHasOnesOnDiagonal)
{
    const auto id = Matrix::identity(4);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            EXPECT_EQ(id(i, j), (i == j ? Complex{1.0} : Complex{}));
}

TEST(Matrix, MultiplyByIdentityIsNoop)
{
    Matrix m{{1.0, 2.0}, {Complex{0, 1}, -3.0}};
    const auto prod = m * Matrix::identity(2);
    EXPECT_NEAR(prod.maxAbsDiff(m), 0.0, 1e-15);
}

TEST(Matrix, MultiplyKnownProduct)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{5.0, 6.0}, {7.0, 8.0}};
    const auto c = a * b;
    EXPECT_EQ(c(0, 0), Complex{19.0});
    EXPECT_EQ(c(0, 1), Complex{22.0});
    EXPECT_EQ(c(1, 0), Complex{43.0});
    EXPECT_EQ(c(1, 1), Complex{50.0});
}

TEST(Matrix, ShapeMismatchThrows)
{
    Matrix a(2, 3);
    Matrix b(2, 3);
    EXPECT_THROW(a * b, std::invalid_argument);
    EXPECT_THROW(a.trace(), std::invalid_argument);
}

TEST(Matrix, DaggerConjugatesAndTransposes)
{
    Matrix m{{Complex{1, 2}, Complex{3, 4}}, {Complex{5, 6}, Complex{7, 8}}};
    const auto d = m.dagger();
    EXPECT_EQ(d(0, 0), (Complex{1, -2}));
    EXPECT_EQ(d(0, 1), (Complex{5, -6}));
    EXPECT_EQ(d(1, 0), (Complex{3, -4}));
    EXPECT_EQ(d(1, 1), (Complex{7, -8}));
}

TEST(Matrix, KronDimensionsAndValues)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{0.0, 1.0}, {1.0, 0.0}};
    const auto k = a.kron(b);
    ASSERT_EQ(k.rows(), 4);
    ASSERT_EQ(k.cols(), 4);
    EXPECT_EQ(k(0, 1), Complex{1.0});
    EXPECT_EQ(k(0, 3), Complex{2.0});
    EXPECT_EQ(k(3, 2), Complex{4.0});
    EXPECT_EQ(k(0, 0), Complex{0.0});
}

TEST(Matrix, KronWithIdentityPreservesUnitarity)
{
    const double r = 1.0 / std::sqrt(2.0);
    Matrix h{{r, r}, {r, -r}};
    EXPECT_TRUE(h.isUnitary());
    EXPECT_TRUE(h.kron(Matrix::identity(2)).isUnitary());
    EXPECT_TRUE(Matrix::identity(4).kron(h).isUnitary());
}

TEST(Matrix, TraceSumsDiagonal)
{
    Matrix m{{Complex{1, 1}, 0.0}, {0.0, Complex{2, -3}}};
    EXPECT_EQ(m.trace(), (Complex{3, -2}));
}

TEST(Matrix, FrobeniusNormOfIdentity)
{
    EXPECT_NEAR(Matrix::identity(4).frobeniusNorm(), 2.0, 1e-15);
}

TEST(Matrix, DiagonalBuilder)
{
    const auto d = Matrix::diagonal({1.0, Complex{0, 1}, -1.0});
    EXPECT_EQ(d.rows(), 3);
    EXPECT_EQ(d(1, 1), (Complex{0, 1}));
    EXPECT_EQ(d(0, 1), Complex{});
}

TEST(Matrix, IsUnitaryRejectsNonUnitary)
{
    Matrix m{{1.0, 1.0}, {0.0, 1.0}};
    EXPECT_FALSE(m.isUnitary());
}

TEST(Hsd, ZeroForEqualUnitaries)
{
    const double r = 1.0 / std::sqrt(2.0);
    Matrix h{{r, r}, {r, -r}};
    EXPECT_NEAR(hilbertSchmidtDistance(h, h), 0.0, 1e-15);
}

TEST(Hsd, ZeroUpToGlobalPhase)
{
    const double r = 1.0 / std::sqrt(2.0);
    Matrix h{{r, r}, {r, -r}};
    const auto phased = h * std::exp(kI * 0.7);
    EXPECT_NEAR(hilbertSchmidtDistance(h, phased), 0.0, 1e-12);
    EXPECT_TRUE(h.equalsUpToPhase(phased));
}

TEST(Hsd, OneishForOrthogonalUnitaries)
{
    // Tr(X^dagger Z) = 0 -> HSD = 1.
    Matrix x{{0.0, 1.0}, {1.0, 0.0}};
    Matrix z{{1.0, 0.0}, {0.0, -1.0}};
    EXPECT_NEAR(hilbertSchmidtDistance(x, z), 1.0, 1e-15);
}

TEST(Hsd, SymmetricInArguments)
{
    Matrix x{{0.0, 1.0}, {1.0, 0.0}};
    const double r = 1.0 / std::sqrt(2.0);
    Matrix h{{r, r}, {r, -r}};
    EXPECT_NEAR(hilbertSchmidtDistance(x, h), hilbertSchmidtDistance(h, x),
                1e-15);
}

}  // namespace
}  // namespace geyser
