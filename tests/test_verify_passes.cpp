/**
 * @file
 * Property tests: every transpile pass (basis translation, 1q fusion,
 * CZ cancellation, shortest-path routing, SABRE routing) preserves
 * unitary equivalence — up to global phase, and through the
 * initial/final layout permutations once routed — on seeded random
 * 3-5 qubit circuits drawn from the shared verify::randomCircuit
 * generator. Plus: a deliberately broken pass is caught by the verifier
 * and shrunk to a minimized reproducer.
 */
#include <gtest/gtest.h>

#include <iostream>

#include "geyser/pipeline.hpp"
#include "topology/topology.hpp"
#include "transpile/basis.hpp"
#include "transpile/passes.hpp"
#include "transpile/router.hpp"
#include "transpile/sabre.hpp"
#include "verify/differential.hpp"
#include "verify/equivalence.hpp"
#include "verify/random_circuit.hpp"

namespace geyser {
namespace {

Circuit
drawCircuit(int seed)
{
    return verify::randomLogicalCircuit(3 + seed % 3, 18,
                                        static_cast<uint64_t>(seed));
}

class PassProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(PassProperty, BasisTranslationPreservesUnitary)
{
    const Circuit c = drawCircuit(GetParam());
    const auto report = verify::checkUnitary(c, decomposeToBasis(c));
    EXPECT_TRUE(report.equivalent) << report.detail;
}

TEST_P(PassProperty, FusionAndCancellationPreserveUnitary)
{
    const Circuit c = drawCircuit(GetParam());
    Circuit fused = decomposeToBasis(c);
    fuseU3Pass(fused);
    const auto afterFuse = verify::checkUnitary(c, fused);
    EXPECT_TRUE(afterFuse.equivalent) << "fuse: " << afterFuse.detail;

    cancelCzPass(fused);
    const auto afterCancel = verify::checkUnitary(c, fused);
    EXPECT_TRUE(afterCancel.equivalent) << "cancel: " << afterCancel.detail;

    Circuit optimized = decomposeToBasis(c);
    optimize(optimized);
    const auto afterFixpoint = verify::checkUnitary(c, optimized);
    EXPECT_TRUE(afterFixpoint.equivalent)
        << "fixpoint: " << afterFixpoint.detail;
}

TEST_P(PassProperty, RoutersPreserveUnitaryThroughLayouts)
{
    const Circuit c = drawCircuit(GetParam());
    Circuit physical = decomposeToBasis(c);
    optimize(physical);
    const Topology topo = Topology::forQubits(c.numQubits());

    const RoutedCircuit walked = route(physical, topo);
    const auto walkReport = verify::checkRouted(
        c, walked.circuit, walked.initialLayout, walked.finalLayout);
    EXPECT_TRUE(walkReport.equivalent) << "walk: " << walkReport.detail;

    const auto layout = chooseInitialLayout(physical, topo);
    const RoutedCircuit greedy = route(physical, topo, layout);
    const auto greedyReport = verify::checkRouted(
        c, greedy.circuit, greedy.initialLayout, greedy.finalLayout);
    EXPECT_TRUE(greedyReport.equivalent) << "greedy: " << greedyReport.detail;

    const RoutedCircuit sabre = routeSabre(physical, topo, layout);
    const auto sabreReport = verify::checkRouted(
        c, sabre.circuit, sabre.initialLayout, sabre.finalLayout);
    EXPECT_TRUE(sabreReport.equivalent) << "sabre: " << sabreReport.detail;
}

TEST_P(PassProperty, PipelineSelfVerificationAccepts)
{
    // The opt-in in-pipeline checks must agree that honest compilation
    // is equivalence-preserving (throws VerificationError otherwise).
    const Circuit c = drawCircuit(GetParam());
    PipelineOptions options;
    options.verifyEquivalence = true;
    EXPECT_NO_THROW(compileBaseline(c, options));
    EXPECT_NO_THROW(compileOptiMap(c, options));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassProperty, ::testing::Range(1, 51));

/**
 * A deliberately broken "optimization" pass: silently drops the last
 * entangling gate. The verifier must reject its output and shrink the
 * failure to a minimal circuit.
 */
Circuit
brokenDropLastCzPass(const Circuit &circuit)
{
    Circuit out(circuit.numQubits());
    int lastCz = -1;
    for (size_t i = 0; i < circuit.size(); ++i)
        if (circuit.gates()[i].kind() == GateKind::CZ)
            lastCz = static_cast<int>(i);
    for (size_t i = 0; i < circuit.size(); ++i)
        if (static_cast<int>(i) != lastCz)
            out.append(circuit.gates()[i]);
    return out;
}

TEST(VerifyBrokenPass, CaughtWithMinimizedReproducer)
{
    const Circuit c = decomposeToBasis(
        verify::randomLogicalCircuit(4, 20, 2024));
    ASSERT_GT(c.countKind(GateKind::CZ), 0);

    const Circuit mutated = brokenDropLastCzPass(c);
    const auto report = verify::checkUnitary(c, mutated);
    ASSERT_FALSE(report.equivalent)
        << "broken pass slipped through: " << report.detail;

    const auto stillFails = [](const Circuit &candidate) {
        const Circuit m = brokenDropLastCzPass(candidate);
        if (m.size() == candidate.size())
            return false;  // Pass was a no-op; nothing to catch.
        return !verify::checkUnitary(candidate, m).equivalent;
    };
    const Circuit reproducer = verify::minimizeFailingCircuit(c, stillFails);
    EXPECT_TRUE(stillFails(reproducer));
    // Dropping one CZ can be reduced to the lone CZ it drops.
    EXPECT_LE(reproducer.size(), 2u);
    std::cout << "minimized reproducer (" << reproducer.size()
              << " gates):\n"
              << reproducer.toString();
}

TEST(VerifyBrokenPass, PipelineSelfCheckRejectsAngleCorruption)
{
    // An angle-corrupting stage caught end-to-end: corrupt the logical
    // circuit after capture so the pipeline's own stage checks compare
    // against a reference the stages can no longer reproduce.
    const Circuit c = verify::randomLogicalCircuit(4, 15, 77);
    Circuit corrupted = c;
    bool bent = false;
    for (auto &g : corrupted.gates()) {
        if (g.numParams() > 0) {
            g.setParam(0, g.param(0) + 0.5);
            bent = true;
            break;
        }
    }
    ASSERT_TRUE(bent);
    const auto report = verify::checkUnitary(c, corrupted);
    EXPECT_FALSE(report.equivalent) << report.detail;
}

}  // namespace
}  // namespace geyser
