/**
 * @file
 * Unit tests for gate kinds, matrices, pulse costs, and inversion.
 */
#include <gtest/gtest.h>

#include "circuit/gate.hpp"
#include "linalg/matrix.hpp"

namespace geyser {
namespace {

TEST(GateKindInfo, NamesRoundTrip)
{
    for (int k = 0; k <= static_cast<int>(GateKind::CCX); ++k) {
        const auto kind = static_cast<GateKind>(k);
        EXPECT_EQ(gateKindFromName(gateKindName(kind)), kind);
    }
    EXPECT_THROW(gateKindFromName("bogus"), std::invalid_argument);
}

TEST(GateKindInfo, PhysicalBasis)
{
    EXPECT_TRUE(gateKindIsPhysical(GateKind::U3));
    EXPECT_TRUE(gateKindIsPhysical(GateKind::CZ));
    EXPECT_TRUE(gateKindIsPhysical(GateKind::CCZ));
    EXPECT_FALSE(gateKindIsPhysical(GateKind::H));
    EXPECT_FALSE(gateKindIsPhysical(GateKind::CX));
    EXPECT_FALSE(gateKindIsPhysical(GateKind::CCX));
}

TEST(GatePulses, PaperPulseCosts)
{
    // Paper Fig 3: U3 = 1 Raman pulse, CZ = 3, CCZ = 5 Rydberg pulses.
    EXPECT_EQ(Gate(GateKind::U3, 0).pulses(), 1);
    EXPECT_EQ(Gate(GateKind::CZ, 0, 1).pulses(), 3);
    EXPECT_EQ(Gate(GateKind::CCZ, 0, 1, 2).pulses(), 5);
}

TEST(GatePulses, LogicalGatesHaveNoPulseCost)
{
    EXPECT_THROW(Gate(GateKind::H, 0).pulses(), std::logic_error);
    EXPECT_THROW(Gate(GateKind::CX, 0, 1).pulses(), std::logic_error);
}

TEST(GateMatrix, AllKindsAreUnitary)
{
    const std::vector<Gate> gates = {
        Gate(GateKind::U3, 0, 0.3, 1.1, -0.7), Gate(GateKind::I, 0),
        Gate(GateKind::X, 0), Gate(GateKind::Y, 0), Gate(GateKind::Z, 0),
        Gate(GateKind::H, 0), Gate(GateKind::S, 0), Gate(GateKind::SDG, 0),
        Gate(GateKind::T, 0), Gate(GateKind::TDG, 0),
        Gate(GateKind::RX, 0, 0.4), Gate(GateKind::RY, 0, 1.9),
        Gate(GateKind::RZ, 0, -2.2), Gate(GateKind::P, 0, 0.9),
        Gate(GateKind::CZ, 0, 1), Gate(GateKind::CX, 0, 1),
        Gate(GateKind::CP, 0, 1, 0.8), Gate(GateKind::RZZ, 0, 1, 1.3),
        Gate(GateKind::RXX, 0, 1, 0.5), Gate(GateKind::RYY, 0, 1, 0.6),
        Gate(GateKind::SWAP, 0, 1), Gate(GateKind::CCZ, 0, 1, 2),
        Gate(GateKind::CCX, 0, 1, 2),
    };
    for (const auto &g : gates)
        EXPECT_TRUE(g.matrix().isUnitary(1e-12))
            << g.toString() << "\n" << g.matrix().toString();
}

TEST(GateMatrix, U3SpecialCases)
{
    // H = U3(pi/2, 0, pi); X = U3(pi, 0, pi); I = U3(0, 0, 0).
    EXPECT_LT(u3Matrix(kPi / 2, 0, kPi)
                  .maxAbsDiff(Gate(GateKind::H, 0).matrix()), 1e-12);
    EXPECT_LT(u3Matrix(kPi, 0, kPi)
                  .maxAbsDiff(Gate(GateKind::X, 0).matrix()), 1e-12);
    EXPECT_LT(u3Matrix(0, 0, 0).maxAbsDiff(Matrix::identity(2)), 1e-12);
}

TEST(GateMatrix, CxFromCzAndH)
{
    // Paper Sec 2.1: CX = (I (x) H) CZ (I (x) H), with the H on the
    // target qubit. Local convention: qubit(0) = control = LSB, so the
    // kron has H in the high slot.
    const Matrix h = Gate(GateKind::H, 0).matrix();
    const Matrix lift = h.kron(Matrix::identity(2));
    const Matrix expected = lift * Gate(GateKind::CZ, 0, 1).matrix() * lift;
    EXPECT_LT(expected.maxAbsDiff(Gate(GateKind::CX, 0, 1).matrix()), 1e-12);
}

TEST(GateMatrix, CczFlipsOnlyAllOnes)
{
    const Matrix m = Gate(GateKind::CCZ, 0, 1, 2).matrix();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(m(i, i), (i == 7 ? Complex{-1.0} : Complex{1.0}));
}

TEST(GateMatrix, CcxMapsBasisStatesCorrectly)
{
    // Controls are local bits 0 and 1; target is bit 2.
    const Matrix m = Gate(GateKind::CCX, 0, 1, 2).matrix();
    EXPECT_EQ(m(7, 3), Complex{1.0});
    EXPECT_EQ(m(3, 7), Complex{1.0});
    EXPECT_EQ(m(1, 1), Complex{1.0});
    EXPECT_EQ(m(3, 3), Complex{0.0});
}

TEST(GateInverse, InverseGivesIdentityProduct)
{
    const std::vector<Gate> gates = {
        Gate(GateKind::U3, 0, 0.3, 1.1, -0.7), Gate(GateKind::S, 0),
        Gate(GateKind::T, 0), Gate(GateKind::RX, 0, 0.4),
        Gate(GateKind::RZ, 0, -2.2), Gate(GateKind::P, 0, 0.9),
        Gate(GateKind::CP, 0, 1, 0.8), Gate(GateKind::RZZ, 0, 1, 1.3),
        Gate(GateKind::SWAP, 0, 1), Gate(GateKind::CCX, 0, 1, 2),
        Gate(GateKind::H, 0), Gate(GateKind::CZ, 0, 1),
    };
    for (const auto &g : gates) {
        const auto prod = g.inverse().matrix() * g.matrix();
        EXPECT_LT(prod.maxAbsDiff(Matrix::identity(prod.rows())), 1e-12)
            << g.toString();
    }
}

TEST(Gate, ActsOnChecksAllOperands)
{
    const Gate g(GateKind::CCZ, 2, 5, 7);
    EXPECT_TRUE(g.actsOn(2));
    EXPECT_TRUE(g.actsOn(5));
    EXPECT_TRUE(g.actsOn(7));
    EXPECT_FALSE(g.actsOn(3));
}

TEST(Gate, ToStringIncludesParamsAndQubits)
{
    const Gate g(GateKind::CP, 1, 4, 0.5);
    const std::string s = g.toString();
    EXPECT_NE(s.find("cp"), std::string::npos);
    EXPECT_NE(s.find("q1"), std::string::npos);
    EXPECT_NE(s.find("q4"), std::string::npos);
    EXPECT_NE(s.find("0.5"), std::string::npos);
}

TEST(Gate, EqualityComparesKindQubitsParams)
{
    EXPECT_EQ(Gate(GateKind::CZ, 0, 1), Gate(GateKind::CZ, 0, 1));
    EXPECT_FALSE(Gate(GateKind::CZ, 0, 1) == Gate(GateKind::CZ, 0, 2));
    EXPECT_FALSE(Gate(GateKind::RZ, 0, 0.5) == Gate(GateKind::RZ, 0, 0.6));
}

}  // namespace
}  // namespace geyser
