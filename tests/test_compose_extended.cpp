/**
 * @file
 * Tests for the extended entangler mode and the composition memo.
 */
#include <gtest/gtest.h>

#include "compose/composer.hpp"
#include "sim/unitary_sim.hpp"
#include "transpile/basis.hpp"
#include "transpile/passes.hpp"

namespace geyser {
namespace {

TEST(ExtendedEntangler, FindsCheaperCzLayersForCzStructuredBlock)
{
    // A block generated from a 2-layer CZ(0,1) ansatz (guaranteed
    // representable with two CZ layers = 15 pulses), padded with a
    // cancelling CZ pair for pulse headroom (21 pulses total). Extended
    // mode can recover the cheap CZ structure; paper mode is limited to
    // CCZ layers.
    const Ansatz gen(3, 2, {Entangler::Cz01, Entangler::Cz01});
    std::vector<double> truth(static_cast<size_t>(gen.numAngles()));
    for (size_t i = 0; i < truth.size(); ++i)
        truth[i] = 0.25 + 0.17 * static_cast<double>(i);
    Circuit block = gen.toCircuit(truth);
    block.cz(1, 2);
    block.cz(1, 2);

    ComposeOptions extended;
    extended.entanglerMode = EntanglerMode::Extended;
    const auto ext = composeBlock(block, extended);
    ASSERT_TRUE(ext.composed);
    EXPECT_LT(circuitHsd(block, ext.circuit), 2e-5);
    EXPECT_LT(ext.circuit.totalPulses(), block.totalPulses());

    // Paper mode keeps equivalence too (compose or keep-original).
    ComposeOptions paper;
    paper.entanglerMode = EntanglerMode::PaperCcz;
    const auto pap = composeBlock(block, paper);
    EXPECT_LT(circuitHsd(block, pap.circuit), 2e-5);
    EXPECT_LE(ext.circuit.totalPulses(), pap.circuit.totalPulses());
}

TEST(ExtendedEntangler, StillComposesCczBlocks)
{
    Circuit logical(3);
    logical.ccz(0, 1, 2);
    Circuit block = decomposeToBasis(logical);
    fuseU3Pass(block, true);
    ComposeOptions opts;
    opts.entanglerMode = EntanglerMode::Extended;
    const auto result = composeBlock(block, opts);
    EXPECT_TRUE(result.composed);
    EXPECT_LT(circuitHsd(block, result.circuit), 2e-5);
}

TEST(ComposeMemo, CachedResultMatchesDirect)
{
    Circuit logical(3);
    logical.ccx(0, 1, 2);
    Circuit block = decomposeToBasis(logical);
    const auto direct = composeBlock(block);
    const auto cached1 = composeBlockCached(block);
    const auto cached2 = composeBlockCached(block);
    EXPECT_EQ(cached1.composed, direct.composed);
    EXPECT_EQ(cached1.circuit.totalPulses(), direct.circuit.totalPulses());
    // The second cached call is a pure lookup: identical result object.
    EXPECT_EQ(cached2.circuit.totalPulses(), cached1.circuit.totalPulses());
    EXPECT_EQ(cached2.evaluations, cached1.evaluations);
}

TEST(ComposeMemo, DistinguishesOptions)
{
    Circuit block(2);
    block.u3(0, 0.4, 0.2, 0.7);
    block.cz(0, 1);
    block.u3(1, 1.4, -0.2, 0.1);
    block.cz(0, 1);

    ComposeOptions tight;
    tight.threshold = 1e-7;
    ComposeOptions loose;
    loose.threshold = 1e-3;
    const auto a = composeBlockCached(block, tight);
    const auto b = composeBlockCached(block, loose);
    // Different thresholds must not collide in the memo; both must be
    // valid for their own tolerance.
    if (a.composed)
        EXPECT_LE(a.hsd, 1e-7);
    if (b.composed)
        EXPECT_LE(b.hsd, 1e-3);
}

TEST(ComposeMemo, DistinguishesGateParameters)
{
    Circuit a(2), b(2);
    a.u3(0, 0.5, 0.0, 0.0);
    a.cz(0, 1);
    b.u3(0, 0.6, 0.0, 0.0);
    b.cz(0, 1);
    const auto ra = composeBlockCached(a);
    const auto rb = composeBlockCached(b);
    // Both keep the original (too cheap to compose), but the returned
    // circuits must be their own inputs, not each other's.
    EXPECT_EQ(ra.circuit.gates()[0].param(0), 0.5);
    EXPECT_EQ(rb.circuit.gates()[0].param(0), 0.6);
}

}  // namespace
}  // namespace geyser
