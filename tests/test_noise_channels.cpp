/**
 * @file
 * Composable noise-channel tests: the legacy golden-distribution pin,
 * per-channel physics, RNG-stream isolation, order invariance, and the
 * trajectory-request validation contract.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "metrics/metrics.hpp"
#include "obs/obs.hpp"
#include "sim/noise_channel.hpp"
#include "sim/trajectory.hpp"
#include "topology/topology.hpp"
#include "verify/differential.hpp"
#include "verify/random_circuit.hpp"

namespace geyser {
namespace {

// ---- Shared fixtures ------------------------------------------------

/** The logical probe circuit the golden capture was generated from. */
Circuit
logicalProbe()
{
    Circuit c(4);
    c.h(0);
    c.cx(0, 1);
    c.u3(2, 0.3, 0.1, 0.7);
    c.ccx(0, 1, 2);
    c.rz(3, 0.25);
    c.cz(2, 3);
    c.h(3);
    c.ccz(1, 2, 3);
    c.cx(3, 0);
    c.h(2);
    return c;
}

/** The physical probe circuit the golden capture was generated from. */
Circuit
physicalProbe()
{
    Circuit c(4);
    c.u3(0, 1.5707963267948966, 0.0, 3.141592653589793);
    c.cz(0, 1);
    c.u3(1, 0.4, 0.2, 0.9);
    c.ccz(0, 1, 2);
    c.u3(2, 0.8, 0.0, 0.1);
    c.cz(2, 3);
    c.u3(3, 0.6, 0.3, 0.2);
    c.ccz(1, 2, 3);
    c.u3(0, 0.2, 0.5, 0.4);
    c.cz(1, 3);
    return c;
}

uint64_t
bitsOf(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

double
marginalOne(const Distribution &p, int q)
{
    const size_t mask = size_t{1} << q;
    double one = 0.0;
    for (size_t i = 0; i < p.size(); ++i)
        if (i & mask)
            one += p[i];
    return one;
}

/** A model with every extended channel on (no crosstalk: no topology). */
NoiseModel
allChannelsModel()
{
    NoiseModel nm = NoiseModel::paperDefault();
    nm.ampDamping = 0.01;
    nm.idleDephasing = 0.002;
    nm.lossPerGate = 0.005;
    nm.correlatedPauli = 0.01;
    nm.readoutError = 0.02;
    return nm;
}

// ---- Golden regression: legacy model is bit-identical ---------------

std::map<std::string, std::vector<uint64_t>>
loadGolden()
{
    const std::string path =
        std::string(GEYSER_NOISE_GOLDEN_DIR) + "/noise_legacy_golden.txt";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::map<std::string, std::vector<uint64_t>> cases;
    std::string word;
    while (in >> word) {
        EXPECT_EQ(word, "case");
        std::string name;
        size_t dim = 0;
        in >> name >> dim;
        auto &values = cases[name];
        for (size_t i = 0; i < dim; ++i) {
            std::string hex;
            in >> hex;
            values.push_back(std::stoull(hex, nullptr, 16));
        }
    }
    return cases;
}

#ifndef __has_feature
#define __has_feature(x) 0
#endif

/**
 * The golden bits were captured on the release preset (-O2) with the
 * default kernel dispatch; that exact configuration — release ctest and
 * the CI noise-ablation `--golden` gate — must stay bit-identical.
 * Other codegen (sanitizer builds at -O1, or a forced GEYSER_BACKEND
 * override) contracts a*b+c differently in the gate-apply kernels and
 * legitimately drifts by a few ULPs, so those runs compare with a tiny
 * ULP tolerance instead: any real draw-order or adapter regression
 * shifts outcomes by ~1e-2, orders of magnitude beyond it.
 */
bool
strictBitIdentity()
{
#if defined(__SANITIZE_ADDRESS__) || __has_feature(address_sanitizer) || \
    __has_feature(undefined_behavior_sanitizer)
    return false;
#else
    const char *env = std::getenv("GEYSER_BACKEND");
    return env == nullptr || *env == '\0';
#endif
}

uint64_t
ulpDistance(uint64_t a, uint64_t b)
{
    // Map the sign-magnitude double bit patterns onto a monotone
    // integer line so adjacent doubles differ by 1.
    const auto monotone = [](uint64_t bits) -> int64_t {
        const int64_t s = static_cast<int64_t>(bits);
        return s >= 0 ? s
                      : static_cast<int64_t>(0x8000000000000000ull - bits);
    };
    const int64_t da = monotone(a), db = monotone(b);
    return static_cast<uint64_t>(da > db ? da - db : db - da);
}

void
expectBitIdentical(const std::vector<uint64_t> &golden,
                   const Distribution &got, const std::string &name)
{
    ASSERT_EQ(golden.size(), got.size()) << name;
    const bool strict = strictBitIdentity();
    for (size_t i = 0; i < got.size(); ++i) {
        if (strict)
            EXPECT_EQ(golden[i], bitsOf(got[i]))
                << name << " diverges at outcome " << i;
        else
            EXPECT_LE(ulpDistance(golden[i], bitsOf(got[i])), 8u)
                << name << " diverges at outcome " << i << " (golden "
                << golden[i] << ", got " << bitsOf(got[i]) << ")";
    }
}

TEST(NoiseGolden, LegacyModelsBitIdenticalToPreRefactorCapture)
{
    // Six configurations captured from the simulator BEFORE the
    // NoiseSource refactor. The compatibility adapter must reproduce
    // every probability bit-for-bit; any drift here is a silent break
    // of the paper's published numbers.
    const auto cases = loadGolden();
    ASSERT_EQ(cases.size(), size_t{6});

    {
        TrajectoryConfig cfg{64, 20260808, false, nullptr};
        expectBitIdentical(
            cases.at("paper-default-logical"),
            noisyDistribution(logicalProbe(), NoiseModel::paperDefault(),
                              cfg),
            "paper-default-logical");
    }
    {
        TrajectoryConfig cfg{64, 4242, true, nullptr};
        expectBitIdentical(
            cases.at("paper-default-physical"),
            noisyDistribution(physicalProbe(), NoiseModel::paperDefault(),
                              cfg),
            "paper-default-physical");
    }
    {
        TrajectoryConfig cfg{64, 31337, false, nullptr};
        NoiseModel nm = NoiseModel::paperDefault();
        nm.perPulse = true;
        expectBitIdentical(cases.at("per-pulse-physical"),
                           noisyDistribution(physicalProbe(), nm, cfg),
                           "per-pulse-physical");
    }
    {
        TrajectoryConfig cfg{64, 77, false, nullptr};
        NoiseModel nm = NoiseModel::paperDefault();
        nm.atomLoss = 0.2;
        expectBitIdentical(cases.at("atom-loss"),
                           noisyDistribution(logicalProbe(), nm, cfg),
                           "atom-loss");
    }
    {
        const auto topo = Topology::makeTriangular(2, 2);
        TrajectoryConfig cfg{64, 99, false, &topo};
        NoiseModel nm = NoiseModel::paperDefault();
        nm.crosstalkPhase = 0.3;
        expectBitIdentical(cases.at("crosstalk"),
                           noisyDistribution(logicalProbe(), nm, cfg),
                           "crosstalk");
    }
    {
        const auto topo = Topology::makeTriangular(2, 2);
        TrajectoryConfig cfg{48, 5150, true, &topo};
        NoiseModel nm{0.002, 0.0015, true, 0.1, 0.05};
        expectBitIdentical(cases.at("kitchen-sink-legacy"),
                           noisyDistribution(physicalProbe(), nm, cfg),
                           "kitchen-sink-legacy");
    }
}

// ---- StreamRng ------------------------------------------------------

TEST(StreamRng, SameKeySameSequence)
{
    StreamRng a(42, NoiseChannelId::AmpDamping, 7);
    StreamRng b(42, NoiseChannelId::AmpDamping, 7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(StreamRng, DistinctKeysDecorrelate)
{
    StreamRng base(42, NoiseChannelId::AmpDamping, 7);
    StreamRng otherSeed(43, NoiseChannelId::AmpDamping, 7);
    StreamRng otherChannel(42, NoiseChannelId::ReadoutError, 7);
    StreamRng otherEvent(42, NoiseChannelId::AmpDamping, 8);
    const double u = base.uniform();
    EXPECT_NE(u, otherSeed.uniform());
    EXPECT_NE(u, otherChannel.uniform());
    EXPECT_NE(u, otherEvent.uniform());
}

TEST(StreamRng, UniformStaysInUnitInterval)
{
    StreamRng rng(1, NoiseChannelId::IdleDephasing, kShotEventIndex);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        const int k = rng.uniformInt(5);
        EXPECT_GE(k, 0);
        EXPECT_LT(k, 5);
    }
}

// ---- Per-channel physics --------------------------------------------

TEST(AmpDamping, CertainDampingCollapsesToGround)
{
    // gamma = 1 makes the jump probability equal P(q = 1) = 1 after an
    // X, so every trajectory relaxes back to |0>.
    Circuit c(1);
    c.x(0);
    TrajectoryConfig cfg{8, 11, false, nullptr};
    const auto p = noisyDistribution(
        c, NoiseModel::singleChannel(NoiseChannelId::AmpDamping, 1.0), cfg);
    EXPECT_NEAR(p[0], 1.0, 1e-12);
    EXPECT_NEAR(p[1], 0.0, 1e-12);
}

TEST(AmpDamping, JumpRateMatchesGamma)
{
    // One X then a damping step with gamma = 0.25: survive |1> with
    // probability 0.75.
    Circuit c(1);
    c.x(0);
    TrajectoryConfig cfg{20000, 13, true, nullptr};
    const auto p = noisyDistribution(
        c, NoiseModel::singleChannel(NoiseChannelId::AmpDamping, 0.25),
        cfg);
    EXPECT_NEAR(p[1], 0.75, 0.02);
}

TEST(AmpDamping, PreservesNormalization)
{
    const Circuit c = verify::randomPhysicalCircuit(3, 16, 555);
    TrajectoryConfig cfg{64, 17, false, nullptr};
    const auto p = noisyDistribution(
        c, NoiseModel::singleChannel(NoiseChannelId::AmpDamping, 0.1), cfg);
    double sum = 0.0;
    for (const double v : p)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(IdleDephasing, RequiresPhysicalCircuit)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    TrajectoryConfig cfg{32, 19, false, nullptr};
    EXPECT_THROW(
        noisyDistribution(
            c, NoiseModel::singleChannel(NoiseChannelId::IdleDephasing, 0.1),
            cfg),
        ValidationError);
}

TEST(IdleDephasing, DephasesQubitThatSitsIdle)
{
    // q0 goes to |+>, then waits 8 pulses while q1/q2 run three CZs,
    // then interferes back. At a saturating rate the idle window is a
    // p = 1/2 phase flip, so the ideally-deterministic |0> output
    // becomes a coin toss.
    const double kH = 1.5707963267948966;
    Circuit c(3);
    c.u3(0, kH, 0.0, 3.141592653589793);
    c.cz(1, 2);
    c.cz(1, 2);
    c.cz(1, 2);
    c.cz(0, 1);
    c.u3(0, kH, 0.0, 3.141592653589793);
    TrajectoryConfig cfg{4000, 23, true, nullptr};
    const auto p = noisyDistribution(
        c, NoiseModel::singleChannel(NoiseChannelId::IdleDephasing, 10.0),
        cfg);
    EXPECT_NEAR(marginalOne(p, 0), 0.5, 0.03);
}

TEST(IdleDephasing, NoIdleTimeNoEffect)
{
    // Back-to-back gates on one qubit accumulate zero idle pulses, so
    // even a saturating rate changes nothing.
    const double kH = 1.5707963267948966;
    Circuit c(1);
    c.u3(0, kH, 0.0, 3.141592653589793);
    c.u3(0, kH, 0.0, 3.141592653589793);
    TrajectoryConfig cfg{64, 29, false, nullptr};
    const auto p = noisyDistribution(
        c, NoiseModel::singleChannel(NoiseChannelId::IdleDephasing, 10.0),
        cfg);
    EXPECT_NEAR(p[0], 1.0, 1e-12);
}

TEST(AtomLoss, CertainLossDepolarizesTouchedQubitsExactly)
{
    // lossPerGate = 1 loses q0 and q1 right before their first gates;
    // q2 has no gates and is never at risk. One trajectory suffices:
    // the lost marginals are *exactly* uniform (engine-level readout
    // depolarization), the untouched qubit is exactly ideal.
    Circuit c(3);
    c.h(0);
    c.x(1);
    TrajectoryConfig cfg{1, 31, false, nullptr};
    const auto p = noisyDistribution(
        c, NoiseModel::singleChannel(NoiseChannelId::AtomLossTracking, 1.0),
        cfg);
    EXPECT_DOUBLE_EQ(marginalOne(p, 0), 0.5);
    EXPECT_DOUBLE_EQ(marginalOne(p, 1), 0.5);
    EXPECT_DOUBLE_EQ(marginalOne(p, 2), 0.0);
    // Joint structure: uniform over the lost pair, pinned q2 = 0.
    for (size_t i = 0; i < p.size(); ++i)
        EXPECT_DOUBLE_EQ(p[i], (i & 4) ? 0.0 : 0.25) << "outcome " << i;
}

TEST(AtomLoss, StrikesMidCircuit)
{
    // x; x on one qubit with per-gate loss 0.3. Pre-shot loss could
    // only mix {ideal |0>, depolarized}: p(1) = 0.15. Mid-circuit loss
    // can also strike between the two X gates (freezing the qubit in
    // |1> before depolarized readout): p(1) = 0.3*0.5 + 0.7*0.3*0.5
    // = 0.255 — distinguishable from any pre-shot rate at this seed.
    Circuit c(1);
    c.x(0);
    c.x(0);
    TrajectoryConfig cfg{20000, 37, true, nullptr};
    const auto p = noisyDistribution(
        c, NoiseModel::singleChannel(NoiseChannelId::AtomLossTracking, 0.3),
        cfg);
    EXPECT_NEAR(p[1], 0.255, 0.02);
}

TEST(CorrelatedPauli, OnlyFiresOnEntanglingGates)
{
    Circuit c(2);
    c.u3(0, 0.3, 0.2, 0.1);
    c.u3(1, 0.7, 0.4, 0.5);
    TrajectoryConfig cfg{32, 41, false, nullptr};
    const auto noisy = noisyDistribution(
        c, NoiseModel::singleChannel(NoiseChannelId::CorrelatedPauli, 1.0),
        cfg);
    const auto ideal = idealDistribution(c);
    for (size_t i = 0; i < noisy.size(); ++i)
        EXPECT_NEAR(noisy[i], ideal[i], 1e-12);
}

TEST(CorrelatedPauli, DrawsUniformNonIdentityPairs)
{
    // CZ on |00> is the identity, so any deviation is the injected
    // pair. Of the 15 non-identity pairs, exactly the 3 in {I,Z}x{I,Z}
    // leave both bits at zero: p(00) = 3/15 = 0.2 at rate 1.
    Circuit c(2);
    c.cz(0, 1);
    TrajectoryConfig cfg{30000, 43, true, nullptr};
    const auto p = noisyDistribution(
        c, NoiseModel::singleChannel(NoiseChannelId::CorrelatedPauli, 1.0),
        cfg);
    EXPECT_NEAR(p[0], 0.2, 0.015);
}

TEST(Readout, AppliesExactConfusionMatrix)
{
    Circuit c(1);
    c.x(0);
    TrajectoryConfig cfg{16, 47, false, nullptr};
    const auto p = noisyDistribution(
        c, NoiseModel::singleChannel(NoiseChannelId::ReadoutError, 0.1),
        cfg);
    EXPECT_NEAR(p[0], 0.1, 1e-12);
    EXPECT_NEAR(p[1], 0.9, 1e-12);
}

TEST(Readout, ComposesAsLinearMapOverLegacyNoise)
{
    // Readout is a deterministic linear transform, so adding it to the
    // legacy model must give exactly the confusion matrix applied to
    // the legacy-only distribution (same seed): the legacy channel's
    // draws are untouched by the extra channel.
    const Circuit c = logicalProbe();
    TrajectoryConfig cfg{64, 53, false, nullptr};
    const auto base =
        noisyDistribution(c, NoiseModel::paperDefault(), cfg);
    NoiseModel withReadout = NoiseModel::paperDefault();
    withReadout.readoutError = 0.07;
    const auto got = noisyDistribution(c, withReadout, cfg);

    Distribution expected = base;
    for (int q = 0; q < c.numQubits(); ++q) {
        const size_t mask = size_t{1} << q;
        for (size_t i = 0; i < expected.size(); ++i) {
            if (i & mask)
                continue;
            const double p0 = expected[i];
            const double p1 = expected[i | mask];
            expected[i] = 0.93 * p0 + 0.07 * p1;
            expected[i | mask] = 0.07 * p0 + 0.93 * p1;
        }
    }
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_NEAR(got[i], expected[i], 1e-12);
}

// ---- RNG-stream isolation and composition ---------------------------

TEST(StreamIsolation, DormantChannelDoesNotPerturbLegacyDraws)
{
    // An enabled-but-never-firing extended channel draws only from its
    // own keyed stream, so the legacy sequential draws — and therefore
    // the whole distribution — are bit-identical. Under a shared
    // sequential RNG this test fails.
    const Circuit c = logicalProbe();
    TrajectoryConfig cfg{64, 59, false, nullptr};
    const auto base =
        noisyDistribution(c, NoiseModel::paperDefault(), cfg);
    NoiseModel withDormantLoss = NoiseModel::paperDefault();
    withDormantLoss.lossPerGate = 1e-300;  // Draws, never fires.
    const auto got = noisyDistribution(c, withDormantLoss, cfg);
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(bitsOf(base[i]), bitsOf(got[i])) << "outcome " << i;
}

TEST(ChannelOrder, ReversedRegistrationIsBitExact)
{
    const Circuit c = physicalProbe();
    const NoiseModel nm = allChannelsModel();
    TrajectoryConfig cfg{32, 61, false, nullptr};
    const auto forward = noisyDistribution(c, nm, cfg);
    TrajectoryConfig reversed = cfg;
    reversed.reverseChannelOrder = true;
    const auto backward = noisyDistribution(c, nm, reversed);
    for (size_t i = 0; i < forward.size(); ++i)
        EXPECT_EQ(bitsOf(forward[i]), bitsOf(backward[i]))
            << "outcome " << i;
}

TEST(ChannelOrder, InvariantOnRandomPhysicalCircuits)
{
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        const Circuit c = verify::randomPhysicalCircuit(4, 24, seed);
        const NoiseModel probe =
            verify::allChannelProbeModel(c, NoiseModel::paperDefault());
        EXPECT_EQ(verify::channelOrderGap(c, probe, 12, 1000 + seed), 0.0)
            << "seed " << seed;
    }
}

TEST(Parallelism, SerialMatchesParallelWithEveryChannelEnabled)
{
    // Chunked accumulation makes serial and parallel runs bit-identical
    // even with all six channels (plus crosstalk and per-pulse scaling)
    // live.
    const auto topo = Topology::makeTriangular(2, 2);
    NoiseModel nm = allChannelsModel();
    nm.bitFlip = 0.002;
    nm.phaseFlip = 0.0015;
    nm.perPulse = true;
    nm.atomLoss = 0.05;
    nm.crosstalkPhase = 0.1;
    const Circuit c = physicalProbe();
    TrajectoryConfig serial{64, 67, false, &topo};
    TrajectoryConfig parallel{64, 67, true, &topo};
    const auto ps = noisyDistribution(c, nm, serial);
    const auto pp = noisyDistribution(c, nm, parallel);
    for (size_t i = 0; i < ps.size(); ++i)
        EXPECT_EQ(bitsOf(ps[i]), bitsOf(pp[i])) << "outcome " << i;
}

TEST(VerifyChannels, TrajectoryEngineMatchesStatevectorWhenChannelsOff)
{
    for (uint64_t seed = 10; seed <= 12; ++seed) {
        const Circuit c = verify::randomLogicalCircuit(4, 20, seed);
        EXPECT_LE(verify::channelsOffGap(c, seed), 1e-12)
            << "seed " << seed;
    }
}

// ---- Validation contract (trajectory-request bugfixes) --------------

TEST(Validation, RejectsNonPositiveTrajectoryCounts)
{
    Circuit c(1);
    c.h(0);
    TrajectoryConfig zero{0, 3, false, nullptr};
    EXPECT_THROW(noisyDistribution(c, NoiseModel::paperDefault(), zero),
                 ValidationError);
    TrajectoryConfig negative{-5, 3, false, nullptr};
    EXPECT_THROW(noisyDistribution(c, NoiseModel::paperDefault(), negative),
                 ValidationError);
}

TEST(Validation, RejectsPerPulseNoiseOnLogicalGates)
{
    // perPulse noise on a pulse-less logical gate used to silently
    // yield a zero error probability; it is a validation error naming
    // the offending gate now.
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    NoiseModel nm = NoiseModel::paperDefault();
    nm.perPulse = true;
    TrajectoryConfig cfg{32, 5, false, nullptr};
    try {
        noisyDistribution(c, nm, cfg);
        FAIL() << "expected ValidationError";
    } catch (const ValidationError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("perPulse"), std::string::npos) << what;
        EXPECT_NE(what.find("gate #0"), std::string::npos) << what;
    }
}

TEST(Validation, ForcedNoiselessRunCollapsesToOneShot)
{
    // A noiseless model with forceTrajectories used to burn the full
    // trajectory budget on identical shots; it runs exactly one now.
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    obs::EnabledScope scope(true);
    auto &runs = obs::counter("sim.trajectories_run");
    const long before = runs.value();
    TrajectoryConfig cfg{200, 7, false, nullptr};
    cfg.forceTrajectories = true;
    const auto p = noisyDistribution(c, NoiseModel::noiseless(), cfg);
    EXPECT_EQ(runs.value() - before, 1);
    const auto ideal = idealDistribution(c);
    for (size_t i = 0; i < p.size(); ++i)
        EXPECT_NEAR(p[i], ideal[i], 1e-12);
}

// ---- Channel-name plumbing ------------------------------------------

TEST(ChannelNames, RoundTripAndRejectUnknown)
{
    const auto &names = noiseChannelNames();
    ASSERT_EQ(names.size(), kNumNoiseChannels);
    for (size_t i = 0; i < names.size(); ++i) {
        const auto id = static_cast<NoiseChannelId>(i);
        EXPECT_EQ(noiseChannelName(id), names[i]);
        EXPECT_EQ(noiseChannelFromName(names[i]), id);
    }
    EXPECT_THROW(noiseChannelFromName("thermal-hop"), ValidationError);
}

TEST(ChannelNames, SetChannelRateValidatesAndTargetsOneField)
{
    NoiseModel nm = NoiseModel::noiseless();
    nm.setChannelRate(NoiseChannelId::LegacyPauli, 0.01);
    EXPECT_EQ(nm.bitFlip, 0.01);
    EXPECT_EQ(nm.phaseFlip, 0.01);
    nm.setChannelRate(NoiseChannelId::ReadoutError, 0.05);
    EXPECT_EQ(nm.readoutError, 0.05);
    EXPECT_EQ(nm.ampDamping, 0.0);
    EXPECT_THROW(nm.setChannelRate(NoiseChannelId::AmpDamping, -0.1),
                 ValidationError);
    EXPECT_THROW(nm.setChannelRate(NoiseChannelId::AmpDamping, 1.5),
                 ValidationError);
    // Idle dephasing is a rate per pulse, not a probability: values
    // above 1 are meaningful (the flip probability saturates at 1/2).
    nm.setChannelRate(NoiseChannelId::IdleDephasing, 10.0);
    EXPECT_EQ(nm.idleDephasing, 10.0);
    EXPECT_THROW(nm.setChannelRate(NoiseChannelId::IdleDephasing, -1.0),
                 ValidationError);
    EXPECT_THROW(nm.setChannelRate(NoiseChannelId::AmpDamping,
                                   std::nan("")),
                 ValidationError);
    const NoiseModel single =
        NoiseModel::singleChannel(NoiseChannelId::CorrelatedPauli, 0.3);
    EXPECT_TRUE(single.legacyNoiseless());
    EXPECT_EQ(single.correlatedPauli, 0.3);
}

}  // namespace
}  // namespace geyser
