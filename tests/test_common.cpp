/**
 * @file
 * Tests for the common substrate: RNG determinism and distribution
 * shapes, thread-pool behaviour under load.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <stdexcept>
#include <thread>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace geyser {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(9);
    std::vector<int> histogram(5, 0);
    for (int i = 0; i < 5000; ++i) {
        const int v = rng.uniformInt(5);
        ASSERT_GE(v, 0);
        ASSERT_LT(v, 5);
        ++histogram[static_cast<size_t>(v)];
    }
    for (const int h : histogram)
        EXPECT_GT(h, 800);  // Roughly uniform.
}

TEST(Rng, BernoulliEdgeProbabilities)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, NormalHasZeroMeanUnitVariance)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, UniformVectorShape)
{
    Rng rng(17);
    const auto v = rng.uniformVector(8, 1.0, 2.0);
    ASSERT_EQ(v.size(), 8u);
    for (const double x : v) {
        EXPECT_GE(x, 1.0);
        EXPECT_LT(x, 2.0);
    }
}

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int i = 0; i < 50; ++i)
        pool.submit([&counter] { ++counter; });
    pool.waitIdle();
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately)
{
    ThreadPool pool(2);
    pool.waitIdle();
    SUCCEED();
}

TEST(ThreadPool, ParallelForHandlesZeroItems)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](int) { FAIL() << "must not be called"; });
    SUCCEED();
}

TEST(ThreadPool, SizeReflectsWorkerCount)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int batch = 0; batch < 5; ++batch) {
        pool.parallelFor(10, [&counter](int) { ++counter; });
    }
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForPropagatesFirstException)
{
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    // Before the fix this std::terminate'd the process from workerLoop.
    EXPECT_THROW(pool.parallelFor(20,
                                  [&ran](int i) {
                                      ++ran;
                                      if (i == 7)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // The whole batch still drained (no task abandoned mid-queue).
    EXPECT_EQ(ran.load(), 20);
    // In-flight bookkeeping stayed exact: the pool is still usable and
    // waitIdle() does not hang.
    std::atomic<int> counter{0};
    pool.parallelFor(10, [&counter](int) { ++counter; });
    EXPECT_EQ(counter.load(), 10);
    pool.waitIdle();
}

TEST(ThreadPool, SubmittedTaskExceptionIsSwallowedAndCounted)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("unobserved"); });
    // Before the fix the skipped --inFlight_ made this hang forever.
    pool.waitIdle();
    EXPECT_EQ(pool.snapshot().exceptions, 1);
    EXPECT_EQ(pool.snapshot().inFlight, 0);
}

TEST(ThreadPool, NestedParallelForOnSingleWorkerPoolRunsInline)
{
    ThreadPool pool(1);
    std::atomic<int> counter{0};
    // A task re-entering parallelFor on its own 1-worker pool used to
    // deadlock: the inner batch could never be scheduled.
    pool.parallelFor(4, [&](int) {
        pool.parallelFor(4, [&](int) { ++counter; });
    });
    EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPool, NestedParallelForPropagatesInnerException)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(2,
                                  [&](int) {
                                      pool.parallelFor(2, [](int j) {
                                          if (j == 1)
                                              throw std::runtime_error("in");
                                      });
                                  }),
                 std::runtime_error);
    pool.waitIdle();  // Bookkeeping still exact.
}

TEST(ThreadPool, ConcurrentBatchesCompleteIndependently)
{
    ThreadPool pool(2);
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    std::atomic<bool> slowStarted{false};

    // One caller's batch parks a task on the gate...
    std::thread slowCaller([&] {
        pool.parallelFor(1, [&](int) {
            slowStarted = true;
            gate.wait();
        });
    });
    while (!slowStarted)
        std::this_thread::yield();

    // ...and a second caller's batch must still complete: with the old
    // global waitIdle() it would block on the parked task and deadlock,
    // since the gate is only released afterwards.
    std::atomic<int> counter{0};
    pool.parallelFor(8, [&counter](int) { ++counter; });
    EXPECT_EQ(counter.load(), 8);

    release.set_value();
    slowCaller.join();
    pool.waitIdle();
}

}  // namespace
}  // namespace geyser
