/**
 * @file
 * End-to-end pipeline tests: every technique produces an equivalent
 * physical circuit; Geyser reduces pulses versus OptiMap versus Baseline
 * on composable workloads; CCZ appears only in Geyser output; TVD
 * machinery works through the layout projection.
 */
#include <gtest/gtest.h>

#include "algos/algos.hpp"
#include "geyser/pipeline.hpp"

namespace geyser {
namespace {

TEST(Pipeline, TechniqueNames)
{
    EXPECT_STREQ(techniqueName(Technique::Baseline), "Baseline");
    EXPECT_STREQ(techniqueName(Technique::OptiMap), "OptiMap");
    EXPECT_STREQ(techniqueName(Technique::Geyser), "Geyser");
    EXPECT_STREQ(techniqueName(Technique::Superconducting),
                 "Superconducting");
}

TEST(Pipeline, BaselineEmitsPhysicalCircuitWithoutCcz)
{
    const Circuit logical = adderBenchmark(1, true);
    const auto result = compileBaseline(logical);
    EXPECT_TRUE(result.physical.isPhysical());
    EXPECT_EQ(result.stats.cczCount, 0);
    EXPECT_GT(result.stats.totalPulses, 0);
    EXPECT_NEAR(idealTvd(result), 0.0, 1e-9);
}

TEST(Pipeline, OptiMapNeverWorseThanBaseline)
{
    for (const auto make :
         {+[] { return adderBenchmark(1, true); },
          +[] { return qftBenchmark(5); },
          +[] { return qaoaBenchmark(5, 8, 3, 23); }}) {
        const Circuit logical = make();
        const auto base = compileBaseline(logical);
        const auto opti = compileOptiMap(logical);
        EXPECT_LE(opti.stats.totalPulses, base.stats.totalPulses);
        EXPECT_EQ(opti.stats.cczCount, 0);
        EXPECT_NEAR(idealTvd(opti), 0.0, 1e-9);
    }
}

TEST(Pipeline, GeyserComposesCczOnToffoliWorkload)
{
    const Circuit logical = multiplier5Benchmark();
    const auto opti = compileOptiMap(logical);
    const auto gey = compileGeyser(logical);
    EXPECT_GT(gey.stats.cczCount, 0)
        << "multiplier is Toffoli-rich; composition must find CCZs";
    EXPECT_LT(gey.stats.totalPulses, opti.stats.totalPulses);
    EXPECT_GT(gey.blockCount, 0);
    EXPECT_GT(gey.composedBlockCount, 0);
    // Sec 6 fidelity check: ideal-output TVD below 1e-2.
    EXPECT_LT(idealTvd(gey), 1e-2);
}

TEST(Pipeline, GeyserNeverWorseThanOptiMapOnPulses)
{
    for (const auto make :
         {+[] { return adderBenchmark(1, true); },
          +[] { return qftBenchmark(5); }}) {
        const Circuit logical = make();
        const auto opti = compileOptiMap(logical);
        const auto gey = compileGeyser(logical);
        EXPECT_LE(gey.stats.totalPulses, opti.stats.totalPulses);
        EXPECT_LT(idealTvd(gey), 1e-2);
    }
}

TEST(Pipeline, SuperconductingUsesSquareGridWithoutCcz)
{
    const Circuit logical = adderBenchmark(1, true);
    const auto sc = compileSuperconducting(logical);
    EXPECT_EQ(sc.stats.cczCount, 0);
    EXPECT_EQ(sc.topology.name().rfind("square", 0), 0u);
    EXPECT_NEAR(idealTvd(sc), 0.0, 1e-9);
}

TEST(Pipeline, CompileDispatchesAllTechniques)
{
    const Circuit logical = multiplier5Benchmark();
    for (const Technique t :
         {Technique::Baseline, Technique::OptiMap, Technique::Geyser,
          Technique::Superconducting}) {
        const auto result = compile(t, logical);
        EXPECT_EQ(result.technique, t);
        EXPECT_TRUE(result.physical.isPhysical());
    }
}

TEST(Pipeline, ProjectToLogicalMarginalizesUnusedAtoms)
{
    // 2 logical qubits on 3 atoms with layout {2, 0}: atom 1 unused.
    Distribution phys(8, 0.0);
    phys[0b101] = 0.5;  // atoms 0 and 2 set -> logical q0 (atom 2) = 1,
                        // logical q1 (atom 0) = 1.
    phys[0b010] = 0.5;  // only unused atom set -> logical 00.
    const auto logical = projectToLogical(phys, {2, 0}, 2, 3);
    EXPECT_NEAR(logical[0b11], 0.5, 1e-15);
    EXPECT_NEAR(logical[0b00], 0.5, 1e-15);
}

TEST(Pipeline, ProjectToLogicalValidatesSize)
{
    EXPECT_THROW(projectToLogical(Distribution(7), {0}, 1, 3),
                 std::invalid_argument);
}

TEST(Pipeline, EvaluateTvdOrdersTechniquesUnderNoise)
{
    // Baseline has the most pulses, so under the same noise its TVD
    // should be at least OptiMap's up to sampling error.
    const Circuit logical = multiplier5Benchmark();
    const auto base = compileBaseline(logical);
    const auto gey = compileGeyser(logical);
    TrajectoryConfig cfg;
    cfg.trajectories = 300;
    cfg.seed = 41;
    const NoiseModel nm = NoiseModel::withRate(0.005);
    const double tvdBase = evaluateTvd(base, nm, cfg);
    const double tvdGey = evaluateTvd(gey, nm, cfg);
    EXPECT_LT(tvdGey, tvdBase);
}

TEST(Pipeline, GeyserStatsAreConsistent)
{
    const Circuit logical = adderBenchmark(1, true);
    const auto gey = compileGeyser(logical);
    EXPECT_GE(gey.blockCount, gey.composedBlockCount);
    EXPECT_GE(gey.maxBlockHsd, 0.0);
    EXPECT_LE(gey.maxBlockHsd, 2e-5);
    EXPECT_EQ(gey.finalLayout.size(),
              static_cast<size_t>(logical.numQubits()));
}

}  // namespace
}  // namespace geyser
