/**
 * @file
 * Cross-module integration tests: the full paper pipeline on real
 * benchmark circuits, checking the evaluation section's qualitative
 * claims end to end.
 */
#include <gtest/gtest.h>

#include "algos/suite.hpp"
#include "common/thread_pool.hpp"
#include "common/rng.hpp"
#include "geyser/pipeline.hpp"

namespace geyser {
namespace {

TEST(Integration, PulseOrderingAcrossTechniquesOnSmallSuite)
{
    // Baseline >= OptiMap >= Geyser in total pulses for every small
    // benchmark (paper Fig 12's shape).
    for (const auto &spec : benchmarkSuite()) {
        if (spec.numQubits > 5)
            continue;
        const Circuit logical = spec.make();
        const auto base = compileBaseline(logical);
        const auto opti = compileOptiMap(logical);
        const auto gey = compileGeyser(logical);
        EXPECT_GE(base.stats.totalPulses, opti.stats.totalPulses)
            << spec.name;
        EXPECT_GE(opti.stats.totalPulses, gey.stats.totalPulses)
            << spec.name;
    }
}

TEST(Integration, GeyserIdealFidelityUnderOnePercent)
{
    // Paper Sec 6: TVD between Geyser's ideal output and the original
    // circuit's ideal output is < 1e-2 across algorithms.
    for (const auto &spec : benchmarkSuite()) {
        if (spec.numQubits > 5)
            continue;
        const auto gey = compileGeyser(spec.make());
        EXPECT_LT(idealTvd(gey), 1e-2) << spec.name;
    }
}

TEST(Integration, CczOnlyAppearsInGeyserCircuits)
{
    const Circuit logical = benchmarkByName("adder-4").make();
    EXPECT_EQ(compileBaseline(logical).stats.cczCount, 0);
    EXPECT_EQ(compileOptiMap(logical).stats.cczCount, 0);
    EXPECT_EQ(compileSuperconducting(logical).stats.cczCount, 0);
    EXPECT_GT(compileGeyser(logical).stats.cczCount, 0);
}

TEST(Integration, DepthPulsesOrderingHolds)
{
    const Circuit logical = benchmarkByName("multiplier-5").make();
    const auto base = compileBaseline(logical);
    const auto gey = compileGeyser(logical);
    EXPECT_LT(gey.stats.depthPulses, base.stats.depthPulses);
}

TEST(Integration, NoiseSweepKeepsTechniqueOrdering)
{
    // Paper Fig 17: the TVD ordering is stable across error rates.
    const Circuit logical = benchmarkByName("multiplier-5").make();
    const auto base = compileBaseline(logical);
    const auto gey = compileGeyser(logical);
    TrajectoryConfig cfg;
    cfg.trajectories = 250;
    cfg.seed = 7;
    for (const double rate : {0.0005, 0.005}) {
        const NoiseModel nm = NoiseModel::withRate(rate);
        EXPECT_LT(evaluateTvd(gey, nm, cfg), evaluateTvd(base, nm, cfg))
            << "rate=" << rate;
    }
}

TEST(Integration, ParallelAndSerialCompositionAgreeOnPulses)
{
    const Circuit logical = benchmarkByName("adder-4").make();
    PipelineOptions serial;
    serial.parallelCompose = false;
    PipelineOptions parallel;
    parallel.parallelCompose = true;
    const auto a = compileGeyser(logical, serial);
    const auto b = compileGeyser(logical, parallel);
    EXPECT_EQ(a.stats.totalPulses, b.stats.totalPulses);
    EXPECT_EQ(a.stats.cczCount, b.stats.cczCount);
}

TEST(Integration, ThreadPoolParallelForCoversAllIndices)
{
    ThreadPool pool(4);
    std::vector<int> hits(100, 0);
    pool.parallelFor(100, [&](int i) { hits[static_cast<size_t>(i)]++; });
    for (const int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(Integration, RngSpawnGivesIndependentStreams)
{
    Rng parent(42);
    Rng childA = parent.spawn();
    Rng childB = parent.spawn();
    // Streams differ from each other.
    bool anyDifferent = false;
    for (int i = 0; i < 8; ++i)
        if (childA.uniform() != childB.uniform())
            anyDifferent = true;
    EXPECT_TRUE(anyDifferent);
}

}  // namespace
}  // namespace geyser
