/**
 * @file
 * Topology tests: lattice construction, adjacency, triangles, and the
 * restriction-zone sizes the paper reports in Figs 4 and 7.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "topology/topology.hpp"

namespace geyser {
namespace {

TEST(Topology, TriangularAtomCountAndName)
{
    const auto t = Topology::makeTriangular(3, 4);
    EXPECT_EQ(t.numAtoms(), 12);
    EXPECT_EQ(t.name(), "triangular(3x4)");
}

TEST(Topology, TriangularInteriorAtomHasSixNeighbors)
{
    const auto t = Topology::makeTriangular(5, 5);
    // Atom at row 2, col 2 (index 12) is interior.
    EXPECT_EQ(t.neighbors(12).size(), 6u);
}

TEST(Topology, SquareInteriorNeighborCounts)
{
    const auto plain = Topology::makeSquare(5, 5, false);
    EXPECT_EQ(plain.neighbors(12).size(), 4u);
    const auto diag = Topology::makeSquare(5, 5, true);
    EXPECT_EQ(diag.neighbors(12).size(), 8u);
}

TEST(Topology, TriangularLatticeHasTriangles)
{
    const auto t = Topology::makeTriangular(2, 2);
    EXPECT_FALSE(t.triangles().empty());
    for (const auto &tri : t.triangles()) {
        EXPECT_TRUE(t.areAdjacent(tri[0], tri[1]));
        EXPECT_TRUE(t.areAdjacent(tri[0], tri[2]));
        EXPECT_TRUE(t.areAdjacent(tri[1], tri[2]));
    }
}

TEST(Topology, PlainSquareLatticeHasNoTriangles)
{
    const auto s = Topology::makeSquare(3, 3, false);
    EXPECT_TRUE(s.triangles().empty());
}

TEST(Topology, PaperFig4RestrictionCounts)
{
    // Paper Fig 4 (triangular lattice): a two-qubit operation restricts
    // at most 8 nearby qubits; a three-qubit operation at most 9.
    const auto t = Topology::makeTriangular(6, 6);
    EXPECT_EQ(t.maxEdgeRestriction(), 8);
    EXPECT_EQ(t.maxTriangleRestriction(), 9);
}

TEST(Topology, PaperFig7SquareFourQubitRestriction)
{
    // Paper Fig 7(b): on the diagonal-coupled square grid, a four-qubit
    // gate on a 2x2 cell restricts 12 qubits.
    const auto s = Topology::makeSquare(6, 6, true);
    // Interior 2x2 cell: rows 2-3, cols 2-3.
    const int a = 2 * 6 + 2, b = 2 * 6 + 3, c = 3 * 6 + 2, d = 3 * 6 + 3;
    EXPECT_EQ(s.restrictionZone({a, b, c, d}).size(), 12u);
}

TEST(Topology, RestrictionZoneExcludesInvolvedAtoms)
{
    const auto t = Topology::makeTriangular(4, 4);
    const auto &tri = t.triangles().front();
    const auto zone = t.restrictionZone({tri[0], tri[1], tri[2]});
    for (const int z : zone) {
        EXPECT_NE(z, tri[0]);
        EXPECT_NE(z, tri[1]);
        EXPECT_NE(z, tri[2]);
    }
}

TEST(Topology, SetsCompatibleRequiresDistance)
{
    const auto t = Topology::makeTriangular(4, 8);
    // Two far-apart atoms are compatible; adjacent ones are not.
    EXPECT_TRUE(t.setsCompatible({0}, {31}));
    EXPECT_FALSE(t.setsCompatible({0}, {1}));
    EXPECT_FALSE(t.setsCompatible({5}, {5}));
}

TEST(Topology, HopDistanceAndShortestPath)
{
    const auto t = Topology::makeSquare(4, 4, false);
    EXPECT_EQ(t.hopDistance(0, 0), 0);
    EXPECT_EQ(t.hopDistance(0, 3), 3);
    EXPECT_EQ(t.hopDistance(0, 15), 6);
    const auto path = t.shortestPath(0, 15);
    EXPECT_EQ(path.size(), 7u);
    EXPECT_EQ(path.front(), 0);
    EXPECT_EQ(path.back(), 15);
    for (size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_TRUE(t.areAdjacent(path[i], path[i + 1]));
}

TEST(Topology, ForQubitsFitsRequested)
{
    for (const int n : {1, 2, 4, 5, 9, 10, 16, 25}) {
        EXPECT_GE(Topology::forQubits(n).numAtoms(), n) << n;
        EXPECT_GE(Topology::squareForQubits(n).numAtoms(), n) << n;
    }
    EXPECT_THROW(Topology::forQubits(0), std::invalid_argument);
}

TEST(Topology, ForQubitsAlwaysHasTriangles)
{
    for (const int n : {1, 2, 4, 5, 9, 10, 16})
        EXPECT_FALSE(Topology::forQubits(n).triangles().empty()) << n;
}

TEST(Topology, TriangularNeighborsAreEquidistant)
{
    // Every interaction edge of the triangular lattice has length ~1
    // (the paper's motivation for the triangular arrangement).
    const auto t = Topology::makeTriangular(4, 4);
    for (const auto &e : t.edges()) {
        const auto &pa = t.position(e[0]);
        const auto &pb = t.position(e[1]);
        const double dx = pa.x - pb.x, dy = pa.y - pb.y;
        EXPECT_NEAR(dx * dx + dy * dy, 1.0, 1e-9);
    }
}

}  // namespace
}  // namespace geyser
