/**
 * @file
 * Circuit IR tests: building, counting, per-qubit views, remapping,
 * inversion.
 */
#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "sim/unitary_sim.hpp"

namespace geyser {
namespace {

TEST(Circuit, AppendValidatesQubitRange)
{
    Circuit c(2);
    EXPECT_THROW(c.h(2), std::out_of_range);
    EXPECT_THROW(c.cz(0, 5), std::out_of_range);
    EXPECT_NO_THROW(c.h(1));
}

TEST(Circuit, GateCountsByKind)
{
    Circuit c(3);
    c.h(0);
    c.h(1);
    c.cz(0, 1);
    c.ccz(0, 1, 2);
    EXPECT_EQ(c.countKind(GateKind::H), 2);
    EXPECT_EQ(c.countKind(GateKind::CZ), 1);
    EXPECT_EQ(c.countKind(GateKind::CCZ), 1);
    EXPECT_EQ(c.countKind(GateKind::X), 0);
    const auto counts = c.gateCounts();
    EXPECT_EQ(counts.at(GateKind::H), 2);
    EXPECT_EQ(counts.size(), 3u);
}

TEST(Circuit, TotalPulsesSumsPerGateCosts)
{
    Circuit c(3);
    c.u3(0, 1, 2, 3);
    c.u3(1, 1, 2, 3);
    c.cz(0, 1);
    c.ccz(0, 1, 2);
    EXPECT_EQ(c.totalPulses(), 1 + 1 + 3 + 5);
}

TEST(Circuit, IsPhysicalDetectsLogicalGates)
{
    Circuit phys(2);
    phys.u3(0, 1, 2, 3);
    phys.cz(0, 1);
    EXPECT_TRUE(phys.isPhysical());
    Circuit log(2);
    log.h(0);
    EXPECT_FALSE(log.isPhysical());
}

TEST(Circuit, QubitOpListsPreserveOrder)
{
    Circuit c(3);
    c.h(0);           // 0
    c.cz(0, 1);       // 1
    c.h(1);           // 2
    c.ccz(0, 1, 2);   // 3
    const auto lists = c.qubitOpLists();
    EXPECT_EQ(lists[0], (std::vector<int>{0, 1, 3}));
    EXPECT_EQ(lists[1], (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(lists[2], (std::vector<int>{3}));
}

TEST(Circuit, RemappedPermutesOperands)
{
    Circuit c(2);
    c.h(0);
    c.cz(0, 1);
    const Circuit r = c.remapped({3, 1}, 4);
    EXPECT_EQ(r.numQubits(), 4);
    EXPECT_EQ(r.gates()[0].qubit(0), 3);
    EXPECT_EQ(r.gates()[1].qubit(0), 3);
    EXPECT_EQ(r.gates()[1].qubit(1), 1);
}

TEST(Circuit, AppendCircuitConcatenates)
{
    Circuit a(2), b(2);
    a.h(0);
    b.cz(0, 1);
    a.append(b);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(a.gates()[1].kind(), GateKind::CZ);
}

TEST(Circuit, InvertedComposesToIdentity)
{
    Circuit c(3);
    c.h(0);
    c.t(1);
    c.cx(0, 1);
    c.cp(1, 2, 0.7);
    c.u3(2, 0.5, 1.0, -0.5);
    c.ccx(0, 1, 2);

    Circuit round_trip = c;
    round_trip.append(c.inverted());
    const auto u = circuitUnitary(round_trip);
    EXPECT_TRUE(u.equalsUpToPhase(Matrix::identity(8), 1e-10));
}

TEST(Circuit, ToStringListsGates)
{
    Circuit c(2);
    c.h(0);
    c.cz(0, 1);
    const auto s = c.toString();
    EXPECT_NE(s.find("h q0"), std::string::npos);
    EXPECT_NE(s.find("cz q0, q1"), std::string::npos);
}

}  // namespace
}  // namespace geyser
