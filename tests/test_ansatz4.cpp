/**
 * @file
 * Four-qubit ansatz tests (the square-lattice CCCZ alternative of
 * paper Sec 3.2, supported at the unitary level for composability
 * studies).
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "compose/composer.hpp"
#include "sim/unitary_sim.hpp"

namespace geyser {
namespace {

TEST(Ansatz4, ParameterAndPulseAccounting)
{
    const Ansatz a(4, 1);
    EXPECT_EQ(a.numAngles(), 24);       // 8 U3 gates x 3 angles.
    EXPECT_EQ(a.numParameters(), 25);
    EXPECT_EQ(a.pulses(), 8 + 7);       // 8 U3 + one 7-pulse CCCZ.
    EXPECT_EQ(Ansatz(4, 2).pulses(), 12 + 14);
}

TEST(Ansatz4, UnitaryIsUnitaryAndCcczAtZeroAngles)
{
    const Ansatz a(4, 1);
    const std::vector<double> zeros(24, 0.0);
    const Matrix u = a.unitary(zeros);
    EXPECT_TRUE(u.isUnitary(1e-10));
    Matrix cccz = Matrix::identity(16);
    cccz(15, 15) = -1;
    EXPECT_LT(u.maxAbsDiff(cccz), 1e-12);
}

TEST(Ansatz4, FastOverlapMatchesMatrixPath)
{
    Rng rng(31);
    const Ansatz a(4, 2);
    const auto angles = rng.uniformVector(a.numAngles(), 0.0, 2 * kPi);
    const auto target =
        a.unitary(rng.uniformVector(a.numAngles(), 0.0, 2 * kPi));
    const Matrix u = a.unitary(angles);
    Complex ref{};
    for (int i = 0; i < 16; ++i)
        for (int j = 0; j < 16; ++j)
            ref += std::conj(target(i, j)) * u(i, j);
    EXPECT_LT(std::abs(a.overlapTrace(target, angles) - ref), 1e-9);
}

TEST(Ansatz4, ToCircuitIsUnsupported)
{
    const Ansatz a(4, 1);
    EXPECT_THROW(a.toCircuit(std::vector<double>(24, 0.0)),
                 std::logic_error);
}

TEST(Ansatz4, RotosolveRecoversSelfGeneratedTarget)
{
    // Sanity: the 4-qubit family is searchable at all (from a nearby
    // start), so the ablation bench measures difficulty, not breakage.
    const Ansatz a(4, 1);
    std::vector<double> truth(24);
    for (size_t i = 0; i < truth.size(); ++i)
        truth[i] = 0.2 + 0.1 * static_cast<double>(i);
    const Matrix target = a.unitary(truth);
    std::vector<double> angles = truth;
    for (auto &x : angles)
        x += 0.05;
    long evals = 0;
    const double h = rotosolve(a, target, angles, 200, 1e-8, evals);
    EXPECT_LT(h, 1e-5);
}

TEST(Ansatz4, FiveQubitsRejected)
{
    EXPECT_THROW(Ansatz(5, 1), std::invalid_argument);
    EXPECT_THROW(Ansatz(1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace geyser
