/**
 * @file
 * SABRE lookahead-router tests: output contract (adjacency, layout
 * correctness, unitary preservation) and quality versus the
 * shortest-path walker.
 */
#include <gtest/gtest.h>

#include "sim/statevector.hpp"
#include "transpile/basis.hpp"
#include "transpile/sabre.hpp"

namespace geyser {
namespace {

void
expectRoutedEquivalent(const Circuit &logical, const RoutedCircuit &routed,
                       int num_atoms)
{
    StateVector orig(logical.numQubits());
    orig.apply(logical);
    StateVector mapped(num_atoms);
    mapped.apply(routed.circuit);
    const auto po = orig.probabilities();
    const auto pm = mapped.probabilities();
    Distribution projected(po.size(), 0.0);
    for (size_t y = 0; y < pm.size(); ++y) {
        size_t x = 0;
        for (int q = 0; q < logical.numQubits(); ++q)
            if (y & (size_t{1} << routed.finalLayout[static_cast<size_t>(q)]))
                x |= size_t{1} << q;
        projected[x] += pm[y];
    }
    for (size_t i = 0; i < po.size(); ++i)
        EXPECT_NEAR(po[i], projected[i], 1e-9);
}

TEST(Sabre, AdjacentCircuitNeedsNoSwaps)
{
    const auto topo = Topology::makeTriangular(2, 2);
    Circuit c(4);
    c.cz(0, 1);
    c.u3(1, 1, 1, 1);
    std::vector<Qubit> trivial{0, 1, 2, 3};
    const auto routed = routeSabre(c, topo, trivial);
    EXPECT_EQ(routed.swapsInserted, 0);
    EXPECT_EQ(routed.circuit.size(), 2u);
}

TEST(Sabre, EveryCzEndsUpAdjacent)
{
    const auto topo = Topology::makeSquare(3, 3, false);
    Circuit logical(9);
    for (int i = 0; i < 9; ++i)
        logical.cx(i, (i + 4) % 9);
    const auto routed = routeSabre(decomposeToBasis(logical), topo);
    for (const auto &g : routed.circuit.gates()) {
        if (g.kind() == GateKind::CZ)
            EXPECT_TRUE(topo.areAdjacent(g.qubit(0), g.qubit(1)));
    }
}

TEST(Sabre, PreservesSemanticsThroughLayout)
{
    const auto topo = Topology::makeSquare(2, 3, false);
    Circuit logical(5);
    logical.h(0);
    logical.cx(0, 4);
    logical.cx(1, 3);
    logical.cx(4, 2);
    logical.cx(2, 0);
    const auto routed = routeSabre(decomposeToBasis(logical), topo);
    expectRoutedEquivalent(logical, routed, topo.numAtoms());
}

TEST(Sabre, NotWorseThanWalkerOnCongestedCircuit)
{
    // All-to-all interactions on a line: lookahead routing should need
    // no more swaps than greedy path walking.
    const auto topo = Topology::makeSquare(1, 6, false);
    Circuit logical(6);
    for (int i = 0; i < 6; ++i)
        for (int j = i + 1; j < 6; ++j)
            logical.cz(i, j);
    const Circuit phys = decomposeToBasis(logical);
    std::vector<Qubit> trivial{0, 1, 2, 3, 4, 5};
    const auto walker = route(phys, topo, trivial);
    const auto sabre = routeSabre(phys, topo, trivial);
    EXPECT_LE(sabre.swapsInserted, walker.swapsInserted);
    expectRoutedEquivalent(logical, sabre, topo.numAtoms());
}

TEST(Sabre, ValidatesInputs)
{
    const auto topo = Topology::makeTriangular(2, 2);
    Circuit logicalGate(2);
    logicalGate.h(0);
    EXPECT_THROW(routeSabre(logicalGate, topo, std::vector<Qubit>{0, 1}),
                 std::invalid_argument);
    Circuit tooWide(9);
    tooWide.u3(8, 0, 0, 0);
    EXPECT_THROW(routeSabre(tooWide, topo, std::vector<Qubit>(9, 0)),
                 std::invalid_argument);
    Circuit fine(2);
    fine.cz(0, 1);
    EXPECT_THROW(routeSabre(fine, topo, std::vector<Qubit>{0}),
                 std::invalid_argument);
}

TEST(Sabre, DeterministicOutput)
{
    const auto topo = Topology::makeSquare(2, 3, false);
    Circuit logical(6);
    for (int i = 0; i < 6; ++i)
        logical.cz(i, (i + 3) % 6);
    const Circuit phys = decomposeToBasis(logical);
    const auto a = routeSabre(phys, topo);
    const auto b = routeSabre(phys, topo);
    EXPECT_EQ(a.swapsInserted, b.swapsInserted);
    EXPECT_EQ(a.circuit.size(), b.circuit.size());
    EXPECT_EQ(a.finalLayout, b.finalLayout);
}

TEST(Sabre, HandlesDeepRandomishCircuit)
{
    const auto topo = Topology::forQubits(9);
    Circuit logical(9);
    for (int r = 0; r < 8; ++r)
        for (int i = 0; i < 9; ++i)
            logical.cz(i, (i + r + 1) % 9);
    const Circuit phys = decomposeToBasis(logical);
    const auto routed = routeSabre(phys, topo);
    for (const auto &g : routed.circuit.gates()) {
        if (g.kind() == GateKind::CZ)
            EXPECT_TRUE(topo.areAdjacent(g.qubit(0), g.qubit(1)));
    }
    expectRoutedEquivalent(logical, routed, topo.numAtoms());
}

}  // namespace
}  // namespace geyser
