/**
 * @file
 * Fleet compilation tests: skeleton-key canonicalization properties,
 * skeleton grouping, plan serialization round trips, the 1e-12 re-bind
 * vs from-scratch oracle guarantee, warm-cache plan reuse, and the
 * batch payload parser.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <string>
#include <vector>

#include "algos/algos.hpp"
#include "cache/result_cache.hpp"
#include "common/error.hpp"
#include "fleet/fleet.hpp"
#include "io/serialize.hpp"

using namespace geyser;
using fleet::ParamSlot;

namespace {

/** Every (gate, param) slot of a circuit — the explicit full mask. */
std::vector<std::pair<int, int>>
allSlots(const Circuit &circuit)
{
    std::vector<std::pair<int, int>> slots;
    for (size_t g = 0; g < circuit.size(); ++g)
        for (int p = 0; p < circuit.gates()[g].numParams(); ++p)
            slots.emplace_back(static_cast<int>(g), p);
    return slots;
}

/** Structure equal and every parameter within `tol`. */
void
expectCircuitsMatch(const Circuit &a, const Circuit &b, double tol)
{
    ASSERT_EQ(a.numQubits(), b.numQubits());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        const Gate &ga = a.gates()[i];
        const Gate &gb = b.gates()[i];
        ASSERT_EQ(ga.kind(), gb.kind()) << "gate " << i;
        ASSERT_EQ(ga.numQubits(), gb.numQubits()) << "gate " << i;
        for (int q = 0; q < ga.numQubits(); ++q)
            ASSERT_EQ(ga.qubit(q), gb.qubit(q)) << "gate " << i;
        for (int p = 0; p < ga.numParams(); ++p)
            ASSERT_LE(std::abs(ga.param(p) - gb.param(p)), tol)
                << "gate " << i << " param " << p;
    }
}

std::string
tempDir(const char *tag)
{
    std::string pattern =
        ::testing::TempDir() + "geyser_fleet_" + tag + "_XXXXXX";
    EXPECT_NE(::mkdtemp(pattern.data()), nullptr);
    return pattern;
}

}  // namespace

// ---- Satellite 4: skeleton-key canonicalization properties -----------

TEST(SkeletonKey, SameStructureDifferentAnglesShareOneKey)
{
    const PipelineOptions options;
    const Circuit a = vqeBenchmark(4, 2, 1);
    const Circuit b = vqeBenchmark(4, 2, 2);

    // Empty mask = every parameter varies: a pure structure hash.
    const std::string keyA =
        cache::skeletonCacheKey(a, {}, options, Technique::Geyser);
    const std::string keyB =
        cache::skeletonCacheKey(b, {}, options, Technique::Geyser);
    EXPECT_EQ(keyA, keyB);
    EXPECT_EQ(keyA.rfind("s-", 0), 0u) << keyA;

    // The explicit all-slots mask canonicalizes to the same key as the
    // empty mask — there is one representation of "all varying".
    EXPECT_EQ(cache::skeletonCacheKey(a, allSlots(a), options,
                                      Technique::Geyser),
              keyA);

    // And the skeleton key is distinct from the exact compile key,
    // which hashes the angles.
    EXPECT_NE(keyA,
              cache::compileCacheKey(a, options, Technique::Geyser));
}

TEST(SkeletonKey, StructuralChangesChangeTheKey)
{
    const PipelineOptions options;
    Circuit base(3);
    base.u3(0, 0.1, 0.2, 0.3);
    base.cx(0, 1);
    base.u3(2, 0.4, 0.5, 0.6);
    const std::string key =
        cache::skeletonCacheKey(base, {}, options, Technique::Geyser);

    {  // Different gate kind at one position.
        Circuit c(3);
        c.u3(0, 0.1, 0.2, 0.3);
        c.cz(0, 1);
        c.u3(2, 0.4, 0.5, 0.6);
        EXPECT_NE(cache::skeletonCacheKey(c, {}, options,
                                          Technique::Geyser),
                  key);
    }
    {  // Different operands.
        Circuit c(3);
        c.u3(0, 0.1, 0.2, 0.3);
        c.cx(1, 0);
        c.u3(2, 0.4, 0.5, 0.6);
        EXPECT_NE(cache::skeletonCacheKey(c, {}, options,
                                          Technique::Geyser),
                  key);
    }
    {  // Extra qubit.
        Circuit c(4);
        c.u3(0, 0.1, 0.2, 0.3);
        c.cx(0, 1);
        c.u3(2, 0.4, 0.5, 0.6);
        EXPECT_NE(cache::skeletonCacheKey(c, {}, options,
                                          Technique::Geyser),
                  key);
    }
    {  // Extra gate.
        Circuit c = base;
        c.h(2);
        EXPECT_NE(cache::skeletonCacheKey(c, {}, options,
                                          Technique::Geyser),
                  key);
    }
    // Different technique (and hence topology).
    EXPECT_NE(cache::skeletonCacheKey(base, {}, options,
                                      Technique::Superconducting),
              key);
    // Different behaviour-relevant pipeline option.
    PipelineOptions other = options;
    other.compose.threshold *= 0.5;
    EXPECT_NE(cache::skeletonCacheKey(base, {}, other, Technique::Geyser),
              key);
}

TEST(SkeletonKey, FixedAnglesAreBitExactVaryingAnglesCanonicalize)
{
    const PipelineOptions options;
    Circuit base(2);
    base.u3(0, 0.1, 0.2, 0.3);
    base.cx(0, 1);
    base.u3(1, 0.4, 0.5, 0.6);

    // Only gate 2's angles vary; gate 0's are fixed.
    const std::vector<std::pair<int, int>> mask = {{2, 0}, {2, 1}, {2, 2}};
    const std::string key =
        cache::skeletonCacheKey(base, mask, options, Technique::Geyser);

    // Changing a varying angle keeps the key.
    {
        Circuit c(2);
        c.u3(0, 0.1, 0.2, 0.3);
        c.cx(0, 1);
        c.u3(1, 9.4, 9.5, 9.6);
        EXPECT_EQ(cache::skeletonCacheKey(c, mask, options,
                                          Technique::Geyser),
                  key);
    }
    // Changing a fixed angle changes the key.
    {
        Circuit c(2);
        c.u3(0, 0.1000000001, 0.2, 0.3);
        c.cx(0, 1);
        c.u3(1, 0.4, 0.5, 0.6);
        EXPECT_NE(cache::skeletonCacheKey(c, mask, options,
                                          Technique::Geyser),
                  key);
    }
    // Shrinking the mask (slot becomes fixed) changes the key.
    EXPECT_NE(cache::skeletonCacheKey(base, {{2, 0}}, options,
                                      Technique::Geyser),
              key);
}

// ---- Grouping --------------------------------------------------------

TEST(SkeletonGrouping, PartitionsByStructureAndDerivesVaryingSlots)
{
    std::vector<Circuit> members;
    for (uint64_t seed = 0; seed < 3; ++seed)
        members.push_back(vqeBenchmark(4, 1, seed));
    members.push_back(vqeBenchmark(5, 1, 0));  // Different skeleton.
    members.push_back(vqeBenchmark(4, 1, 7));  // Back to the first.

    const auto groups = fleet::groupBySkeleton(members);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].members, (std::vector<int>{0, 1, 2, 4}));
    EXPECT_EQ(groups[1].members, (std::vector<int>{3}));

    // The varying slots are exactly the slots that differ somewhere in
    // the group, and every one is a real parameter slot.
    ASSERT_FALSE(groups[0].varyingSlots.empty());
    const Circuit &rep = members[0];
    for (const ParamSlot &slot : groups[0].varyingSlots) {
        ASSERT_GE(slot.gate, 0);
        ASSERT_LT(slot.gate, static_cast<int>(rep.size()));
        ASSERT_LT(slot.param, rep.gates()[slot.gate].numParams());
        bool differs = false;
        for (const int m : groups[0].members)
            differs = differs ||
                      members[static_cast<size_t>(m)]
                              .gates()[slot.gate]
                              .param(slot.param) !=
                          rep.gates()[slot.gate].param(slot.param);
        EXPECT_TRUE(differs)
            << "slot (" << slot.gate << "," << slot.param << ")";
    }
    // A single-member group has nothing varying.
    EXPECT_TRUE(groups[1].varyingSlots.empty());
    // Digests separate the structures.
    EXPECT_NE(groups[0].digest, groups[1].digest);
    EXPECT_EQ(groups[0].digest, fleet::structureDigest(members[4]));
}

// ---- Plan build / re-bind / oracle -----------------------------------

TEST(SkeletonPlan, RebindMatchesFromScratchOracleTo1e12)
{
    std::vector<Circuit> members;
    for (uint64_t seed = 0; seed < 4; ++seed)
        members.push_back(vqeBenchmark(4, 1, seed));
    const auto groups = fleet::groupBySkeleton(members);
    ASSERT_EQ(groups.size(), 1u);

    PipelineOptions options;
    const auto plan = fleet::buildSkeletonPlan(
        Technique::Geyser, members[0], groups[0].varyingSlots, options);
    ASSERT_TRUE(plan.has_value());
    EXPECT_GT(plan->blockCount, 0);

    for (size_t m = 1; m < members.size(); ++m) {
        const auto rebound =
            fleet::rebindMember(*plan, members[m], options);
        ASSERT_TRUE(rebound.has_value()) << "member " << m;

        // Oracle: the same stitched construction, rebuilt from scratch
        // for this member — no memo, no persistent cache.
        const auto oracle = fleet::buildSkeletonPlan(
            Technique::Geyser, members[m], groups[0].varyingSlots,
            options, /*cachedCompose=*/false);
        ASSERT_TRUE(oracle.has_value()) << "member " << m;
        const auto fromScratch =
            fleet::rebindMember(*oracle, members[m], options);
        ASSERT_TRUE(fromScratch.has_value()) << "member " << m;

        expectCircuitsMatch(rebound->physical, fromScratch->physical,
                            1e-12);
        EXPECT_EQ(rebound->stats.totalPulses,
                  fromScratch->stats.totalPulses);
        EXPECT_EQ(rebound->swapsInserted, fromScratch->swapsInserted);
    }
}

TEST(SkeletonPlan, RebindRejectsDivergentMembers)
{
    std::vector<Circuit> members;
    for (uint64_t seed = 0; seed < 2; ++seed)
        members.push_back(vqeBenchmark(4, 1, seed));
    const auto groups = fleet::groupBySkeleton(members);
    PipelineOptions options;
    const auto plan = fleet::buildSkeletonPlan(
        Technique::Geyser, members[0], groups[0].varyingSlots, options);
    ASSERT_TRUE(plan.has_value());

    // A structurally different circuit cannot re-bind.
    EXPECT_FALSE(
        fleet::rebindMember(*plan, vqeBenchmark(4, 2, 0), options)
            .has_value());
    EXPECT_FALSE(
        fleet::rebindMember(*plan, vqeBenchmark(5, 1, 0), options)
            .has_value());
}

TEST(SkeletonPlan, SerializationRoundTripsAndRebindsIdentically)
{
    std::vector<Circuit> members;
    for (uint64_t seed = 0; seed < 3; ++seed)
        members.push_back(vqeBenchmark(4, 1, seed));
    const auto groups = fleet::groupBySkeleton(members);
    PipelineOptions options;
    const auto plan = fleet::buildSkeletonPlan(
        Technique::Geyser, members[0], groups[0].varyingSlots, options);
    ASSERT_TRUE(plan.has_value());

    const std::string text = fleet::skeletonPlanToText(*plan);
    const auto parsed = fleet::skeletonPlanFromText(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->technique, plan->technique);
    EXPECT_EQ(parsed->swapsInserted, plan->swapsInserted);
    EXPECT_EQ(parsed->blockCount, plan->blockCount);
    EXPECT_EQ(parsed->composedBlockCount, plan->composedBlockCount);
    EXPECT_EQ(parsed->adopted, plan->adopted);
    EXPECT_EQ(parsed->initialLayout, plan->initialLayout);
    EXPECT_EQ(parsed->finalLayout, plan->finalLayout);
    EXPECT_EQ(parsed->paramVarying, plan->paramVarying);
    EXPECT_EQ(parsed->rebindMap, plan->rebindMap);
    expectCircuitsMatch(parsed->transpiled, plan->transpiled, 0.0);
    expectCircuitsMatch(parsed->stitched, plan->stitched, 0.0);
    // Round-tripping the parsed plan is byte-stable.
    EXPECT_EQ(fleet::skeletonPlanToText(*parsed), text);

    // Re-binding through the parsed plan gives the identical result.
    const auto a = fleet::rebindMember(*plan, members[2], options);
    const auto b = fleet::rebindMember(*parsed, members[2], options);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    expectCircuitsMatch(a->physical, b->physical, 0.0);

    // Malformed text is rejected, not crashed on.
    EXPECT_FALSE(fleet::skeletonPlanFromText("").has_value());
    EXPECT_FALSE(fleet::skeletonPlanFromText("garbage\n").has_value());
    EXPECT_FALSE(
        fleet::skeletonPlanFromText(text.substr(0, text.size() / 2))
            .has_value());
}

// ---- Fleet engine ----------------------------------------------------

TEST(FleetCompile, WarmCacheServesThePlanWithoutRebuilding)
{
    std::vector<fleet::FleetJob> jobs;
    for (uint64_t seed = 0; seed < 4; ++seed) {
        fleet::FleetJob job;
        job.name = "m" + std::to_string(seed);
        job.logical = vqeBenchmark(4, 1, seed);
        jobs.push_back(std::move(job));
    }

    const std::string dir = tempDir("warm");
    cache::CacheConfig cacheConfig;
    cacheConfig.dir = dir;

    fleet::FleetReport cold;
    {
        cache::ResultCache cacheStore(cacheConfig);
        fleet::FleetOptions options;
        options.pipeline.cache = &cacheStore;
        cold = fleet::compileFleet(jobs, options);
    }
    EXPECT_EQ(cold.members, 4);
    EXPECT_EQ(cold.groups, 1);
    EXPECT_GE(cold.planStores, 1);
    EXPECT_EQ(cold.planHits, 0);
    EXPECT_EQ(cold.verifyFailures, 0);
    EXPECT_EQ(cold.rebound + cold.fallback, cold.members);

    fleet::FleetReport warm;
    {
        cache::ResultCache cacheStore(cacheConfig);
        fleet::FleetOptions options;
        options.pipeline.cache = &cacheStore;
        warm = fleet::compileFleet(jobs, options);
    }
    EXPECT_GE(warm.planHits, 1);
    EXPECT_EQ(warm.planStores, 0);
    EXPECT_EQ(warm.verifyFailures, 0);
    EXPECT_EQ(warm.cacheCorrupt, 0);
    EXPECT_GT(warm.reuseRatio(), 0.9);

    // Same results either way.
    ASSERT_EQ(warm.rows.size(), cold.rows.size());
    for (size_t i = 0; i < warm.rows.size(); ++i) {
        EXPECT_EQ(warm.rows[i].pulses, cold.rows[i].pulses) << i;
        EXPECT_EQ(warm.rows[i].depth, cold.rows[i].depth) << i;
    }
}

TEST(FleetCompile, MultiTechniqueReportCoversEveryMember)
{
    std::vector<fleet::FleetJob> jobs;
    for (uint64_t seed = 0; seed < 2; ++seed) {
        fleet::FleetJob job;
        job.name = "m" + std::to_string(seed);
        job.logical = vqeBenchmark(4, 1, seed);
        jobs.push_back(std::move(job));
    }
    fleet::FleetOptions options;
    options.techniques = {Technique::Baseline, Technique::Geyser};
    const fleet::FleetReport report = fleet::compileFleet(jobs, options);

    EXPECT_EQ(report.members, 2);
    EXPECT_EQ(report.jobs, 4);
    ASSERT_EQ(report.techniques.size(), 2u);
    EXPECT_EQ(report.techniques[0].technique, Technique::Baseline);
    EXPECT_EQ(report.techniques[0].members, 2);
    EXPECT_EQ(report.techniques[1].technique, Technique::Geyser);
    // Geyser (optimized, composed) must not be worse than baseline on
    // total pulses — the paper's core claim, embedded in the report.
    EXPECT_LE(report.techniques[1].totalPulses,
              report.techniques[0].totalPulses);

    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"geyser-fleet\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"techniques\""), std::string::npos);
    EXPECT_NE(json.find("\"reuseRatio\""), std::string::npos);
    const std::string table = report.renderTable();
    EXPECT_NE(table.find("Baseline"), std::string::npos) << table;
    EXPECT_NE(table.find("Geyser"), std::string::npos);
}

// ---- Batch payload parser --------------------------------------------

TEST(FleetPayload, SplitsOnSeparatorLinesAndNamesMembers)
{
    const std::string a = circuitToQasm(vqeBenchmark(3, 1, 0));
    const std::string b = circuitToQasm(vqeBenchmark(3, 1, 1));
    const auto jobs = fleet::parseFleetPayload(a + "%%\n" + b);
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].name, "m0");
    EXPECT_EQ(jobs[1].name, "m1");
    EXPECT_EQ(jobs[0].logical.numQubits(), 3);
    EXPECT_EQ(fleet::structureDigest(jobs[0].logical),
              fleet::structureDigest(jobs[1].logical));

    // CRLF separators and whitespace-only trailing parts are tolerated.
    const auto crlf = fleet::parseFleetPayload(a + "%%\r\n" + b +
                                               "%%\n  \n");
    EXPECT_EQ(crlf.size(), 2u);
}

TEST(FleetPayload, MalformedMemberNamesItsIndex)
{
    const std::string good = circuitToQasm(vqeBenchmark(3, 1, 0));
    try {
        fleet::parseFleetPayload(good + "%%\nthis is not qasm\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError &e) {
        EXPECT_NE(std::string(e.what()).find("fleet member 1"),
                  std::string::npos)
            << e.what();
    }
}
