/**
 * @file
 * Composition-ansatz tests: parameter accounting (the paper's 19/29
 * counts), pulse costs, and agreement between the fast unitary path and
 * the materialized circuit.
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "compose/ansatz.hpp"
#include "sim/unitary_sim.hpp"

namespace geyser {
namespace {

TEST(Ansatz, PaperParameterCounts)
{
    // Fig 10: one 3-qubit layer = 18 angles + 1 categorical = 19; a
    // second layer brings it to 29.
    const Ansatz one(3, 1);
    EXPECT_EQ(one.numAngles(), 18);
    EXPECT_EQ(one.numParameters(), 19);
    const Ansatz two(3, 2);
    EXPECT_EQ(two.numAngles(), 27);
    EXPECT_EQ(two.numParameters(), 29);
}

TEST(Ansatz, PaperPulseCounts)
{
    // One layer: six U3 (6 pulses) + one CCZ (5) = 11 pulses (Sec 3.4).
    EXPECT_EQ(Ansatz(3, 1).pulses(), 11);
    // Each extra layer adds three U3 + one CCZ = 8 pulses.
    EXPECT_EQ(Ansatz(3, 2).pulses(), 19);
    EXPECT_EQ(Ansatz(3, 3).pulses(), 27);
    // Two-qubit ansatz uses CZ: 4 U3 + 1 CZ = 7.
    EXPECT_EQ(Ansatz(2, 1).pulses(), 7);
}

TEST(Ansatz, RejectsBadShapes)
{
    EXPECT_THROW(Ansatz(1, 1), std::invalid_argument);
    EXPECT_THROW(Ansatz(5, 1), std::invalid_argument);
    EXPECT_THROW(Ansatz(3, 0), std::invalid_argument);
    EXPECT_THROW(Ansatz(3, 2, {Entangler::Ccz}), std::invalid_argument);
}

TEST(Ansatz, UnitaryMatchesMaterializedCircuit)
{
    Rng rng(5);
    for (int layers = 1; layers <= 3; ++layers) {
        for (int nq = 2; nq <= 3; ++nq) {
            const Ansatz ansatz(nq, layers);
            const auto angles =
                rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi);
            const Matrix direct = ansatz.unitary(angles);
            const Matrix viaCircuit =
                circuitUnitary(ansatz.toCircuit(angles));
            EXPECT_LT(direct.maxAbsDiff(viaCircuit), 1e-10)
                << "nq=" << nq << " layers=" << layers;
        }
    }
}

TEST(Ansatz, UnitaryIsUnitary)
{
    Rng rng(17);
    const Ansatz ansatz(3, 2);
    const auto angles = rng.uniformVector(ansatz.numAngles(), 0.0, 2 * kPi);
    EXPECT_TRUE(ansatz.unitary(angles).isUnitary(1e-10));
}

TEST(Ansatz, ZeroAnglesGiveEntanglersOnly)
{
    // All-zero U3 columns are identities, so a one-layer CCZ ansatz at
    // zero angles is exactly CCZ.
    const Ansatz ansatz(3, 1);
    const std::vector<double> zeros(18, 0.0);
    Matrix ccz = Matrix::identity(8);
    ccz(7, 7) = -1;
    EXPECT_LT(ansatz.unitary(zeros).maxAbsDiff(ccz), 1e-12);
}

TEST(Ansatz, ExtendedEntanglersChangeUnitary)
{
    const std::vector<double> zeros(18, 0.0);
    const Ansatz ccz(3, 1, {Entangler::Ccz});
    const Ansatz cz01(3, 1, {Entangler::Cz01});
    const Ansatz cz02(3, 1, {Entangler::Cz02});
    const Ansatz cz12(3, 1, {Entangler::Cz12});
    EXPECT_GT(hilbertSchmidtDistance(ccz.unitary(zeros),
                                     cz01.unitary(zeros)), 0.01);
    EXPECT_GT(hilbertSchmidtDistance(cz01.unitary(zeros),
                                     cz02.unitary(zeros)), 0.01);
    EXPECT_GT(hilbertSchmidtDistance(cz02.unitary(zeros),
                                     cz12.unitary(zeros)), 0.01);
}

TEST(Ansatz, CzEntanglerLayerCheapensPulses)
{
    EXPECT_EQ(Ansatz(3, 1, {Entangler::Cz01}).pulses(), 9);
    EXPECT_EQ(Ansatz(3, 2, {Entangler::Cz01, Entangler::Ccz}).pulses(), 17);
}

TEST(Ansatz, FastOverlapMatchesMatrixPath)
{
    Rng rng(23);
    for (int nq = 2; nq <= 3; ++nq) {
        for (int layers = 1; layers <= 3; ++layers) {
            std::vector<Entangler> ents;
            for (int l = 0; l < layers; ++l)
                ents.push_back(l % 2 ? Entangler::Cz02 : Entangler::Ccz);
            const Ansatz ansatz(nq, layers, ents);
            const auto angles =
                rng.uniformVector(ansatz.numAngles(), 0.0, 2 * kPi);
            const auto target =
                ansatz.unitary(rng.uniformVector(ansatz.numAngles(), 0.0,
                                                 2 * kPi));
            // Reference: Tr(T^dagger U) via the matrix path.
            const Matrix u = ansatz.unitary(angles);
            Complex ref{};
            for (int i = 0; i < u.rows(); ++i)
                for (int j = 0; j < u.cols(); ++j)
                    ref += std::conj(target(i, j)) * u(i, j);
            const Complex fast = ansatz.overlapTrace(target, angles);
            EXPECT_LT(std::abs(fast - ref), 1e-10)
                << "nq=" << nq << " layers=" << layers;
        }
    }
}

TEST(Ansatz, AngleRoleCyclesThetaPhiLambda)
{
    const Ansatz ansatz(3, 1);
    EXPECT_EQ(ansatz.angleRole(0), 0);
    EXPECT_EQ(ansatz.angleRole(1), 1);
    EXPECT_EQ(ansatz.angleRole(2), 2);
    EXPECT_EQ(ansatz.angleRole(3), 0);
    EXPECT_EQ(ansatz.angleRole(17), 2);
}

TEST(Ansatz, WrongAngleCountThrows)
{
    const Ansatz ansatz(3, 1);
    EXPECT_THROW(ansatz.unitary(std::vector<double>(5, 0.0)),
                 std::invalid_argument);
    EXPECT_THROW(ansatz.toCircuit(std::vector<double>(5, 0.0)),
                 std::invalid_argument);
}

}  // namespace
}  // namespace geyser
