/**
 * @file
 * Property/fuzz suite for the incremental environment-contraction
 * kernel (compose/evaluator): the incremental trace must match the
 * dense reference oracle (Ansatz::overlapTrace / Ansatz::unitary) to
 * 1e-12 across random qubit counts, layer counts, entangler patterns,
 * and angle perturbations — including the single-coordinate update
 * path after many interleaved sweeps (stale-environment hazard), the
 * sweep-protocol state machine, and the rotosolve rewrite on top.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "compose/composer.hpp"
#include "compose/evaluator.hpp"
#include "verify/equivalence.hpp"
#include "verify/kernel_check.hpp"

namespace geyser {
namespace {

using verify::hsdFromTrace;

std::vector<Entangler>
patternFor(int num_qubits, int layers, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Entangler> out;
    for (int l = 0; l < layers; ++l) {
        if (num_qubits == 3) {
            constexpr Entangler kChoices[] = {Entangler::Ccz, Entangler::Cz01,
                                              Entangler::Cz02,
                                              Entangler::Cz12};
            out.push_back(kChoices[rng.uniformInt(4)]);
        } else {
            out.push_back(num_qubits == 4 ? Entangler::Cccz
                                          : Entangler::Cz01);
        }
    }
    return out;
}

TEST(ComposeKernel, FullTraceMatchesDenseAcrossShapes)
{
    Rng rng(11);
    for (int numQubits = 2; numQubits <= 4; ++numQubits) {
        for (int layers = 1; layers <= 5; ++layers) {
            const Ansatz ansatz(
                numQubits, layers,
                patternFor(numQubits, layers,
                           static_cast<uint64_t>(numQubits * 10 + layers)));
            const Matrix target = ansatz.unitary(
                rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi));
            AnsatzEvaluator evaluator(ansatz, target);
            for (int rep = 0; rep < 5; ++rep) {
                const auto angles =
                    rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi);
                evaluator.setAngles(angles);
                const Complex dense = ansatz.overlapTrace(target, angles);
                EXPECT_LT(std::abs(evaluator.trace() - dense), 1e-12)
                    << "n=" << numQubits << " layers=" << layers;
            }
        }
    }
}

TEST(ComposeKernel, ProbesMatchDenseThroughSweepProtocol)
{
    // Drive the full sweep state machine with random commits; every
    // probe must equal a fresh dense evaluation of the same angles.
    Rng rng(23);
    const int numQubits = 3, layers = 4;
    const Ansatz ansatz(numQubits, layers, patternFor(numQubits, layers, 7));
    const Matrix target = ansatz.unitary(
        rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi));
    AnsatzEvaluator evaluator(ansatz, target);
    std::vector<double> angles =
        rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi);
    evaluator.setAngles(angles);

    for (int sweep = 0; sweep < 4; ++sweep) {
        evaluator.beginSweep();
        for (int col = 0; col < evaluator.columns(); ++col) {
            evaluator.beginColumn(col);
            for (int q = 0; q < numQubits; ++q) {
                evaluator.beginQubit(q);
                for (int role = 0; role < 3; ++role) {
                    const double value = rng.uniform(0.0, 2.0 * kPi);
                    const size_t idx = static_cast<size_t>(
                        ansatz.angleIndex(col, q, role));
                    const double saved = angles[idx];
                    angles[idx] = value;
                    const Complex dense =
                        ansatz.overlapTrace(target, angles);
                    EXPECT_LT(
                        std::abs(evaluator.probe(role, value) - dense),
                        1e-12)
                        << "sweep=" << sweep << " col=" << col
                        << " q=" << q << " role=" << role;
                    if (rng.bernoulli(0.6)) {
                        evaluator.commitAngle(role, value);
                    } else {
                        angles[idx] = saved;
                    }
                }
            }
        }
    }
    // Evaluator state and mirror must agree at the end.
    EXPECT_EQ(evaluator.angles(), angles);
    EXPECT_LT(std::abs(evaluator.trace() -
                       ansatz.overlapTrace(target, angles)),
              1e-12);
}

TEST(ComposeKernel, SingleCoordinateUpdateAfterInterleavedSweeps)
{
    // The stale-environment trap: many sweeps with commits, then a
    // fresh sweep touching one coordinate deep in the circuit.
    Rng rng(31);
    const int numQubits = 3, layers = 5;
    const Ansatz ansatz(numQubits, layers, patternFor(numQubits, layers, 9));
    const Matrix target = ansatz.unitary(
        rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi));
    AnsatzEvaluator evaluator(ansatz, target);
    std::vector<double> angles =
        rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi);
    evaluator.setAngles(angles);

    // Churn: three sweeps committing everything.
    for (int sweep = 0; sweep < 3; ++sweep) {
        evaluator.beginSweep();
        for (int col = 0; col < evaluator.columns(); ++col) {
            evaluator.beginColumn(col);
            for (int q = 0; q < numQubits; ++q) {
                evaluator.beginQubit(q);
                for (int role = 0; role < 3; ++role) {
                    const double value = rng.uniform(0.0, 2.0 * kPi);
                    angles[static_cast<size_t>(
                        ansatz.angleIndex(col, q, role))] = value;
                    evaluator.commitAngle(role, value);
                }
            }
        }
    }
    // Single-coordinate sweeps at every column depth.
    for (int targetCol = 0; targetCol < evaluator.columns(); ++targetCol) {
        evaluator.beginSweep();
        for (int col = 0; col <= targetCol; ++col)
            evaluator.beginColumn(col);
        const int q = rng.uniformInt(numQubits);
        const int role = rng.uniformInt(3);
        evaluator.beginQubit(q);
        const double value = rng.uniform(0.0, 2.0 * kPi);
        angles[static_cast<size_t>(
            ansatz.angleIndex(targetCol, q, role))] = value;
        const Complex dense = ansatz.overlapTrace(target, angles);
        EXPECT_LT(std::abs(evaluator.probe(role, value) - dense), 1e-12)
            << "targetCol=" << targetCol;
        evaluator.commitAngle(role, value);
    }
}

TEST(ComposeKernel, VerifyLayerCrossCheckPasses)
{
    verify::KernelCheckOptions options;
    options.trials = 25;
    options.seed = 5;
    const auto report = verify::checkComposeKernel(options);
    EXPECT_TRUE(report.pass) << report.detail;
    EXPECT_GT(report.probesChecked, 1000);
    EXPECT_LT(report.maxDeviation, 1e-12);
}

TEST(ComposeKernel, RotosolveReportsTrueDistance)
{
    // The honesty fix: result.hsd must equal the dense HSD of the
    // returned angles (no accumulated closed-form model error).
    Rng rng(47);
    for (int layers = 1; layers <= 4; ++layers) {
        const Ansatz ansatz(3, layers);
        const Matrix target = ansatz.unitary(
            rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi));
        AnsatzEvaluator evaluator(ansatz, target);
        evaluator.setAngles(
            rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi));
        long evaluations = 0;
        const double reported =
            rotosolve(evaluator, 40, 0.0, evaluations);
        const double truth = hilbertSchmidtDistance(
            ansatz.unitary(evaluator.angles()), target);
        EXPECT_NEAR(reported, truth, 1e-10) << "layers=" << layers;
        EXPECT_GT(evaluations, 0);
    }
}

TEST(ComposeKernel, DenseWrapperMatchesEvaluatorPath)
{
    // The legacy rotosolve signature is a thin wrapper; both entry
    // points must agree exactly (same probes, same commits).
    const Ansatz ansatz(3, 2);
    Rng rng(53);
    const Matrix target = ansatz.unitary(
        rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi));
    const auto start =
        rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi);

    std::vector<double> wrapperAngles = start;
    long wrapperEvals = 0;
    const double wrapperHsd = rotosolve(ansatz, target, wrapperAngles, 25,
                                        1e-9, wrapperEvals);

    AnsatzEvaluator evaluator(ansatz, target);
    evaluator.setAngles(start);
    long evals = 0;
    const double hsd = rotosolve(evaluator, 25, 1e-9, evals);

    EXPECT_EQ(wrapperEvals, evals);
    EXPECT_DOUBLE_EQ(wrapperHsd, hsd);
    EXPECT_EQ(wrapperAngles, evaluator.angles());
}

TEST(ComposeKernel, SweepProtocolEnforcesColumnOrder)
{
    const Ansatz ansatz(2, 1);
    const Matrix target = Matrix::identity(4);
    AnsatzEvaluator evaluator(ansatz, target);
    EXPECT_THROW(evaluator.beginColumn(0), std::logic_error);  // No sweep.
    evaluator.beginSweep();
    EXPECT_THROW(evaluator.beginColumn(1), std::logic_error);  // Skipped 0.
    evaluator.beginColumn(0);
    EXPECT_THROW(evaluator.probe(0, 0.0), std::logic_error);  // No qubit.
    evaluator.beginQubit(0);
    EXPECT_NO_THROW(evaluator.probe(0, 0.0));
}

TEST(ComposeKernel, RejectsMismatchedInputs)
{
    const Ansatz ansatz(3, 1);
    EXPECT_THROW(AnsatzEvaluator(ansatz, Matrix::identity(4)),
                 std::invalid_argument);
    AnsatzEvaluator evaluator(ansatz, Matrix::identity(8));
    EXPECT_THROW(evaluator.setAngles(std::vector<double>(5, 0.0)),
                 std::invalid_argument);
}

}  // namespace
}  // namespace geyser
