/**
 * @file
 * Serialization tests: native text round-trips, QASM export shape, and
 * the compile-result cache.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "algos/algos.hpp"
#include "io/serialize.hpp"
#include "sim/unitary_sim.hpp"

namespace geyser {
namespace {

Circuit
sampleCircuit()
{
    Circuit c(3);
    c.h(0);
    c.u3(1, 0.123456789012345, -2.5, kPi);
    c.cx(0, 1);
    c.cp(1, 2, 0.75);
    c.ccz(0, 1, 2);
    c.swap(0, 2);
    return c;
}

TEST(Serialize, TextRoundTripPreservesGates)
{
    const Circuit c = sampleCircuit();
    const Circuit back = circuitFromText(circuitToText(c));
    ASSERT_EQ(back.size(), c.size());
    EXPECT_EQ(back.numQubits(), c.numQubits());
    for (size_t i = 0; i < c.size(); ++i)
        EXPECT_TRUE(c.gates()[i] == back.gates()[i]) << i;
}

TEST(Serialize, TextRoundTripPreservesUnitary)
{
    const Circuit c = sampleCircuit();
    const Circuit back = circuitFromText(circuitToText(c));
    EXPECT_LT(circuitHsd(c, back), 1e-12);
}

TEST(Serialize, RejectsMalformedText)
{
    EXPECT_THROW(circuitFromText("nonsense"), std::invalid_argument);
    EXPECT_THROW(circuitFromText("qubits 2\nfoo 0"), std::invalid_argument);
}

TEST(Serialize, QasmExportContainsHeaderAndGates)
{
    const std::string qasm = circuitToQasm(sampleCircuit());
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(qasm.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
    EXPECT_NE(qasm.find("cx q[0],q[1];"), std::string::npos);
    // CCZ is emitted as an h-conjugated Toffoli for QASM 2 portability.
    EXPECT_NE(qasm.find("ccx q[0],q[1],q[2];"), std::string::npos);
    EXPECT_NE(qasm.find("cu1("), std::string::npos);
}

TEST(Serialize, CompileResultCacheRoundTrips)
{
    const Circuit logical = multiplier5Benchmark();
    const auto result = compileGeyser(logical);

    const std::string path = "/tmp/geyser_test_cache.txt";
    saveCompileResult(path, result);
    const auto loaded = loadCompileResult(path, logical);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->technique, Technique::Geyser);
    EXPECT_EQ(loaded->physical.size(), result.physical.size());
    EXPECT_EQ(loaded->finalLayout, result.finalLayout);
    EXPECT_EQ(loaded->stats.totalPulses, result.stats.totalPulses);
    EXPECT_EQ(loaded->stats.cczCount, result.stats.cczCount);
    EXPECT_EQ(loaded->stats.depthPulses, result.stats.depthPulses);
    EXPECT_EQ(loaded->blockCount, result.blockCount);
    std::remove(path.c_str());
}

TEST(Serialize, CacheMissReturnsNullopt)
{
    EXPECT_FALSE(loadCompileResult("/tmp/definitely_missing_geyser.txt",
                                   Circuit(1)).has_value());
}

TEST(Serialize, CacheRejectsCorruptFile)
{
    const std::string path = "/tmp/geyser_test_corrupt.txt";
    FILE *f = fopen(path.c_str(), "w");
    fputs("not a cache file\n", f);
    fclose(f);
    EXPECT_FALSE(loadCompileResult(path, Circuit(1)).has_value());
    std::remove(path.c_str());
}

}  // namespace
}  // namespace geyser
