/**
 * @file
 * Tests for the checked environment-knob helpers (common/env.hpp):
 * unset/empty variables fall back, valid values parse, and garbage,
 * trailing junk, or out-of-range values raise ValidationError naming
 * the variable instead of degrading silently.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/env.hpp"
#include "common/error.hpp"

using namespace geyser;

namespace {

constexpr const char *kVar = "GEYSER_TEST_ENV_KNOB";

struct EnvGuard
{
    ~EnvGuard() { ::unsetenv(kVar); }
    void set(const char *value) { ::setenv(kVar, value, 1); }
};

/** The error must name the variable so the fix is obvious. */
template <typename Fn>
void
expectNamedFailure(Fn fn)
{
    try {
        fn();
        FAIL() << "expected ValidationError";
    } catch (const ValidationError &e) {
        EXPECT_NE(std::string(e.what()).find(kVar), std::string::npos)
            << e.what();
    }
}

}  // namespace

TEST(EnvInt, UnsetAndEmptyFallBack)
{
    EnvGuard guard;
    EXPECT_EQ(env::envInt(kVar, 42, 0, 100), 42);
    guard.set("");
    EXPECT_EQ(env::envInt(kVar, 42, 0, 100), 42);
}

TEST(EnvInt, ParsesValidValues)
{
    EnvGuard guard;
    guard.set("7");
    EXPECT_EQ(env::envInt(kVar, 0, 0, 100), 7);
    guard.set("0");
    EXPECT_EQ(env::envInt(kVar, 5, 0, 100), 0);
    guard.set("100");
    EXPECT_EQ(env::envInt(kVar, 0, 0, 100), 100);
    guard.set("-3");
    EXPECT_EQ(env::envInt(kVar, 0, -10, 10), -3);
}

TEST(EnvInt, RejectsGarbageTrailingJunkAndRange)
{
    EnvGuard guard;
    for (const char *bad : {"abc", "12abc", "1.5", " 7", "7 ", "1e3",
                            "0x10", "99999999999999999999"}) {
        guard.set(bad);
        expectNamedFailure([&] { env::envInt(kVar, 0, 0, 100); });
    }
    guard.set("101");
    expectNamedFailure([&] { env::envInt(kVar, 0, 0, 100); });
    guard.set("-1");
    expectNamedFailure([&] { env::envInt(kVar, 0, 0, 100); });
}

TEST(EnvDouble, UnsetAndEmptyFallBack)
{
    EnvGuard guard;
    EXPECT_DOUBLE_EQ(env::envDouble(kVar, 0.5, 0.0, 1.0), 0.5);
    guard.set("");
    EXPECT_DOUBLE_EQ(env::envDouble(kVar, 0.5, 0.0, 1.0), 0.5);
}

TEST(EnvDouble, ParsesValidValues)
{
    EnvGuard guard;
    guard.set("0.25");
    EXPECT_DOUBLE_EQ(env::envDouble(kVar, 0.0, 0.0, 1.0), 0.25);
    guard.set("1e-3");
    EXPECT_DOUBLE_EQ(env::envDouble(kVar, 0.0, 0.0, 1.0), 1e-3);
    guard.set("1");
    EXPECT_DOUBLE_EQ(env::envDouble(kVar, 0.0, 0.0, 1.0), 1.0);
}

TEST(EnvDouble, RejectsGarbageNonFiniteAndRange)
{
    EnvGuard guard;
    for (const char *bad : {"abc", "1.5x", "nan", "inf", "1e999"}) {
        guard.set(bad);
        expectNamedFailure([&] { env::envDouble(kVar, 0.0, 0.0, 1e6); });
    }
    guard.set("2.0");
    expectNamedFailure([&] { env::envDouble(kVar, 0.0, 0.0, 1.0); });
    guard.set("-0.1");
    expectNamedFailure([&] { env::envDouble(kVar, 0.0, 0.0, 1.0); });
}

TEST(EnvKnobs, WiredKnobsGoThroughTheCheckedHelpers)
{
    // The three knobs the ISSUE names must reject garbage loudly; each
    // is read at its use site, so this exercises the shared helper the
    // way bench/common.cpp and cache/result_cache.cpp do.
    ::setenv("GEYSER_TRAJECTORIES", "many", 1);
    EXPECT_THROW(env::envInt("GEYSER_TRAJECTORIES", 200, 1, 10'000'000),
                 ValidationError);
    ::unsetenv("GEYSER_TRAJECTORIES");
    ::setenv("GEYSER_CACHE_MAX_MB", "-5", 1);
    EXPECT_THROW(env::envInt("GEYSER_CACHE_MAX_MB", 0, 0, 1'000'000'000),
                 ValidationError);
    ::unsetenv("GEYSER_CACHE_MAX_MB");
    ::setenv("GEYSER_KERNEL_SPEEDUP_FLOOR", "fast", 1);
    EXPECT_THROW(env::envDouble("GEYSER_KERNEL_SPEEDUP_FLOOR", 0.0, 0.0,
                                1e6),
                 ValidationError);
    ::unsetenv("GEYSER_KERNEL_SPEEDUP_FLOOR");
}
