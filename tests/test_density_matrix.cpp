/**
 * @file
 * Density-matrix simulator tests, including the key cross-validation:
 * the Monte-Carlo trajectory engine converges to the exact Kraus
 * channel output.
 */
#include <gtest/gtest.h>

#include "metrics/metrics.hpp"
#include "sim/density_matrix.hpp"
#include "sim/trajectory.hpp"

namespace geyser {
namespace {

TEST(DensityMatrix, InitialStateIsPureZero)
{
    DensityMatrix dm(2);
    EXPECT_NEAR(dm.traceReal(), 1.0, 1e-14);
    EXPECT_NEAR(dm.purity(), 1.0, 1e-14);
    EXPECT_NEAR(dm.probabilities()[0], 1.0, 1e-14);
}

TEST(DensityMatrix, UnitaryEvolutionMatchesStateVector)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.ccz(0, 1, 2);
    c.u3(2, 0.7, 0.2, -0.4);
    c.rzz(1, 2, 0.9);
    DensityMatrix dm(3);
    dm.apply(c);
    const auto pd = dm.probabilities();
    const auto ps = idealDistribution(c);
    for (size_t i = 0; i < ps.size(); ++i)
        EXPECT_NEAR(pd[i], ps[i], 1e-12);
    EXPECT_NEAR(dm.purity(), 1.0, 1e-12);
}

TEST(DensityMatrix, BitFlipChannelMixesState)
{
    DensityMatrix dm(1);
    dm.applyFlipChannel(0, 0.3, 0.0);
    const auto p = dm.probabilities();
    EXPECT_NEAR(p[0], 0.7, 1e-14);
    EXPECT_NEAR(p[1], 0.3, 1e-14);
    EXPECT_LT(dm.purity(), 1.0);
    EXPECT_NEAR(dm.traceReal(), 1.0, 1e-14);
}

TEST(DensityMatrix, PhaseFlipKillsCoherence)
{
    // H|0> then a full phase-flip channel (p = 0.5) fully dephases.
    Circuit c(1);
    c.h(0);
    DensityMatrix dm(1);
    dm.apply(c);
    dm.applyFlipChannel(0, 0.0, 0.5);
    EXPECT_NEAR(std::abs(dm.rho()(0, 1)), 0.0, 1e-14);
    EXPECT_NEAR(dm.purity(), 0.5, 1e-14);
}

TEST(DensityMatrix, TraceAndPositivityPreservedUnderNoise)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    c.ccx(0, 1, 2);
    DensityMatrix dm(3);
    dm.applyNoisy(c, NoiseModel::withRate(0.01));
    EXPECT_NEAR(dm.traceReal(), 1.0, 1e-12);
    for (size_t i = 0; i < dm.dim(); ++i)
        EXPECT_GE(dm.probabilities()[i], -1e-12);
    EXPECT_LT(dm.purity(), 1.0);
}

TEST(DensityMatrix, TrajectoryEngineConvergesToExactChannel)
{
    // The central validation: trajectory averaging samples exactly the
    // channel the density matrix computes in closed form.
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.u3(1, 0.8, 0.1, 0.3);
    c.cz(0, 1);
    c.u3(0, 1.2, -0.5, 0.2);

    const NoiseModel nm = NoiseModel::withRate(0.05);
    const auto exact = exactNoisyDistribution(c, nm);
    TrajectoryConfig cfg;
    cfg.trajectories = 30000;
    cfg.seed = 11;
    const auto sampled = noisyDistribution(c, nm, cfg);
    EXPECT_LT(totalVariationDistance(exact, sampled), 0.01);
}

TEST(DensityMatrix, PerPulseChannelAlsoMatchesTrajectories)
{
    // Per-pulse noise scaling needs physical gates (pulse costs).
    Circuit c(2);
    c.u3(0, kPi / 2, 0, kPi);  // H
    c.cz(0, 1);
    NoiseModel nm = NoiseModel::withRate(0.02);
    nm.perPulse = true;
    const auto exact = exactNoisyDistribution(c, nm);
    TrajectoryConfig cfg;
    cfg.trajectories = 30000;
    cfg.seed = 3;
    const auto sampled = noisyDistribution(c, nm, cfg);
    EXPECT_LT(totalVariationDistance(exact, sampled), 0.01);
}

TEST(DensityMatrix, RejectsOversizedRegisters)
{
    EXPECT_THROW(DensityMatrix(12), std::invalid_argument);
}

}  // namespace
}  // namespace geyser
