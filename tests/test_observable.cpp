/**
 * @file
 * Pauli-observable tests: single-qubit expectations, entangled
 * correlations, Hamiltonian energies, and energy conservation under
 * Trotter evolution (property sweep over step counts).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "algos/algos.hpp"
#include "metrics/observable.hpp"

namespace geyser {
namespace {

TEST(PauliString, RejectsBadLabels)
{
    EXPECT_THROW(PauliString("XQ"), std::invalid_argument);
    EXPECT_NO_THROW(PauliString("IXYZ"));
}

TEST(PauliString, ZOnBasisStates)
{
    StateVector zero(1);
    EXPECT_NEAR(PauliString("Z").expectation(zero), 1.0, 1e-12);
    StateVector one(1, 1);
    EXPECT_NEAR(PauliString("Z").expectation(one), -1.0, 1e-12);
}

TEST(PauliString, XOnHadamardStates)
{
    Circuit c(1);
    c.h(0);
    StateVector plus(1);
    plus.apply(c);
    EXPECT_NEAR(PauliString("X").expectation(plus), 1.0, 1e-12);
    EXPECT_NEAR(PauliString("Z").expectation(plus), 0.0, 1e-12);
    EXPECT_NEAR(PauliString("Y").expectation(plus), 0.0, 1e-12);
}

TEST(PauliString, BellStateCorrelations)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    StateVector bell(2);
    bell.apply(c);
    EXPECT_NEAR(PauliString("ZZ").expectation(bell), 1.0, 1e-12);
    EXPECT_NEAR(PauliString("XX").expectation(bell), 1.0, 1e-12);
    EXPECT_NEAR(PauliString("YY").expectation(bell), -1.0, 1e-12);
    EXPECT_NEAR(PauliString("ZI").expectation(bell), 0.0, 1e-12);
    EXPECT_NEAR(PauliString("IZ").expectation(bell), 0.0, 1e-12);
}

TEST(PauliString, IdentityOnWiderState)
{
    StateVector sv(3);
    EXPECT_NEAR(PauliString("ZI").expectation(sv), 1.0, 1e-12);
    EXPECT_THROW(PauliString("ZZZZ").expectation(sv),
                 std::invalid_argument);
}

TEST(Hamiltonian, NeelStateEnergyOfHeisenbergChain)
{
    // Neel |0101>: ZZ terms give -J per bond, XX/YY give 0; field term
    // gives h * (+1 -1 +1 -1) = 0.
    const auto h = Hamiltonian::heisenbergChain(4, 1.0, 0.5);
    Circuit neel(4);
    neel.x(1);
    neel.x(3);
    StateVector sv(4);
    sv.apply(neel);
    EXPECT_NEAR(h.expectation(sv), -3.0, 1e-12);
}

/** Energy is approximately conserved by the model's own evolution. */
class TrotterEnergySweep : public ::testing::TestWithParam<int>
{
};

TEST_P(TrotterEnergySweep, EnergyConservedUnderEvolution)
{
    const int steps = GetParam();
    const int n = 4;
    const double dt = 0.05;
    const auto h = Hamiltonian::heisenbergChain(n, 1.0, 0.5);

    StateVector before(n);
    Circuit prep(n);
    prep.x(1);
    prep.x(3);
    before.apply(prep);
    const double e0 = h.expectation(before);

    StateVector after(n);
    after.apply(heisenbergBenchmark(n, steps, dt));
    const double e1 = h.expectation(after);
    // First-order Trotter: O(dt) energy drift per unit time.
    EXPECT_NEAR(e0, e1, 0.25) << "steps=" << steps;
}

INSTANTIATE_TEST_SUITE_P(Steps, TrotterEnergySweep,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace geyser
