/**
 * @file
 * Tests for the Prometheus text exposition (src/obs/prometheus): the
 * service-family mapping table, generic name sanitization, counter
 * family grouping under one header, the derived cache-hit ratio, and
 * histogram rendering — cumulative le buckets on the base-2 edges,
 * the +Inf bucket, _sum/_count, and the ms-to-seconds scaling.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "obs/prometheus.hpp"

namespace geyser {
namespace {

class PrometheusTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::setEnabled(false);
        obs::reset();
    }
    void TearDown() override
    {
        obs::setEnabled(false);
        obs::reset();
    }
};

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return out;
}

int
countOf(const std::string &text, const std::string &needle)
{
    int n = 0;
    for (size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
        ++n;
    return n;
}

TEST_F(PrometheusTest, ServiceCountersMapToLabelledFamilies)
{
    obs::serviceCounter("service.done").add(5);
    obs::serviceCounter("service.failed").add(2);
    obs::serviceCounter("service.submitted").add(9);
    const std::string text = obs::prometheusText();
    EXPECT_NE(text.find("geyser_jobs_total{outcome=\"done\"} 5\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("geyser_jobs_total{outcome=\"failed\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("geyser_jobs_submitted_total 9\n"),
              std::string::npos);
    // The labelled variants share exactly one header pair.
    EXPECT_EQ(countOf(text, "# TYPE geyser_jobs_total counter"), 1);
    EXPECT_EQ(countOf(text, "# HELP geyser_jobs_total "), 1);
    // No double-suffixed family ever leaks out.
    EXPECT_EQ(text.find("_total_total"), std::string::npos) << text;
}

TEST_F(PrometheusTest, NoiseChannelCountersShareOneLabelledFamily)
{
    obs::serviceCounter("sim.noise.amp_damp_events").add(12);
    obs::serviceCounter("sim.noise.legacy_pauli_events").add(7);
    obs::serviceCounter("sim.noise.readout_events").add(3);
    const std::string text = obs::prometheusText();
    EXPECT_NE(text.find("geyser_sim_noise_events_total"
                        "{channel=\"amp-damp\"} 12\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("geyser_sim_noise_events_total"
                        "{channel=\"legacy-pauli\"} 7\n"),
              std::string::npos);
    EXPECT_NE(text.find("geyser_sim_noise_events_total"
                        "{channel=\"readout\"} 3\n"),
              std::string::npos);
    EXPECT_EQ(countOf(text, "# TYPE geyser_sim_noise_events_total counter"),
              1);
}

TEST_F(PrometheusTest, GenericNamesSanitizeWithTotalSuffix)
{
    obs::serviceCounter("cache.store_error").add(3);
    obs::serviceGauge("pool.in_flight").set(4.0);
    const std::string text = obs::prometheusText();
    EXPECT_NE(text.find("geyser_cache_store_error_total 3\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("geyser_pool_in_flight 4\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE geyser_pool_in_flight gauge"),
              std::string::npos);
}

TEST_F(PrometheusTest, DerivedCacheHitRatio)
{
    obs::serviceCounter("service.done").add(4);
    obs::serviceCounter("service.cache_hit").add(1);
    const std::string text = obs::prometheusText();
    EXPECT_NE(text.find("geyser_cache_hit_ratio 0.25\n"),
              std::string::npos)
        << text;
    // With zero completed jobs the ratio is omitted, not NaN.
    obs::reset();
    obs::serviceCounter("service.cache_hit").add(0);
    const std::string empty = obs::prometheusText();
    EXPECT_EQ(empty.find("geyser_cache_hit_ratio"), std::string::npos);
    EXPECT_EQ(empty.find("nan"), std::string::npos);
}

TEST_F(PrometheusTest, HistogramRendersCumulativeBucketsAndInf)
{
    obs::Histogram &h = obs::serviceHistogram("test.latency");
    h.record(0.5);  // Bucket 0 (< 1).
    h.record(3.0);  // Bucket 2 ([2, 4)).
    h.record(3.5);  // Bucket 2.
    h.record(100.0);  // Bucket 7 ([64, 128)).
    const std::string text = obs::prometheusText();
    // Cumulative counts at the base-2 edges; every edge up to the
    // highest occupied bucket is present even when its count repeats.
    EXPECT_NE(text.find("geyser_test_latency_bucket{le=\"1\"} 1\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("geyser_test_latency_bucket{le=\"2\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("geyser_test_latency_bucket{le=\"4\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("geyser_test_latency_bucket{le=\"64\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("geyser_test_latency_bucket{le=\"128\"} 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("geyser_test_latency_bucket{le=\"+Inf\"} 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("geyser_test_latency_sum 107\n"),
              std::string::npos);
    EXPECT_NE(text.find("geyser_test_latency_count 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE geyser_test_latency histogram"),
              std::string::npos);
}

TEST_F(PrometheusTest, MillisecondHistogramsScaleToSeconds)
{
    // The service records milliseconds (base-2 buckets cannot resolve
    // sub-1 values); the exposition rescales edges and sums to seconds.
    obs::serviceHistogram("service.compile_ms").record(512.0);
    const std::string text = obs::prometheusText();
    EXPECT_NE(text.find("geyser_compile_seconds_bucket{le=\"1.024\"} 1\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("geyser_compile_seconds_sum 0.512\n"),
              std::string::npos);
    EXPECT_NE(text.find("geyser_compile_seconds_count 1\n"),
              std::string::npos);
    // The internal ms name appears only in the HELP line, never as a
    // sample series.
    EXPECT_EQ(text.find("geyser_service_compile_ms"), std::string::npos);
}

TEST_F(PrometheusTest, ExpositionGrammarIsWellFormed)
{
    obs::serviceCounter("service.done").add(2);
    obs::serviceGauge("service.queue_depth").set(1.0);
    obs::serviceHistogram("service.e2e_ms").record(10.0);
    for (const std::string &line : lines(obs::prometheusText())) {
        if (line.empty())
            continue;
        if (line[0] == '#') {
            EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                        line.rfind("# TYPE ", 0) == 0)
                << line;
            continue;
        }
        // Every sample line is `<name>[{labels}] <value>`.
        const size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
        const std::string series = line.substr(0, space);
        EXPECT_EQ(series.rfind("geyser_", 0), 0u) << line;
        const size_t open = series.find('{');
        if (open != std::string::npos)
            EXPECT_EQ(series.back(), '}') << line;
    }
}

TEST_F(PrometheusTest, SnapshotIncludesRingDropCounter)
{
    // The ring's drop counter is injected into every snapshot so a
    // scrape can alert on recorder overflow.
    const std::string text = obs::prometheusText();
    EXPECT_NE(text.find("geyser_obs_events_dropped_total 0\n"),
              std::string::npos)
        << text;
}

}  // namespace
}  // namespace geyser
