/**
 * @file
 * Cross-module tests that stitch independent subsystems together:
 * QASM-in -> compile -> QASM-out, pulse lowering of compiled circuits,
 * exact-vs-sampled noise on Geyser output, CCZ restriction scheduling.
 */
#include <gtest/gtest.h>

#include "circuit/draw.hpp"
#include "geyser/pipeline.hpp"
#include "io/qasm_parser.hpp"
#include "io/serialize.hpp"
#include "metrics/metrics.hpp"
#include "pulse/pulse.hpp"
#include "sim/density_matrix.hpp"
#include "sim/unitary_sim.hpp"

namespace geyser {
namespace {

TEST(CrossModule, QasmRoundTripThroughGeyserCompilation)
{
    const std::string qasm =
        "OPENQASM 2.0;\n"
        "include \"qelib1.inc\";\n"
        "qreg q[3];\n"
        "h q[0];\n"
        "cx q[0],q[1];\n"
        "ccx q[0],q[1],q[2];\n"
        "rz(pi/3) q[2];\n";
    const Circuit logical = circuitFromQasm(qasm);
    const CompileResult gey = compileGeyser(logical);
    EXPECT_LT(idealTvd(gey), 1e-2);

    // The compiled circuit exports to QASM and re-imports equivalently.
    const Circuit back = circuitFromQasm(circuitToQasm(gey.physical));
    EXPECT_LT(circuitHsd(gey.physical, back), 1e-8);
}

TEST(CrossModule, CompiledCircuitLowersToPulses)
{
    const CompileResult gey = compileGeyser(circuitFromQasm(
        "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\n"
        "ccx q[0],q[1],q[2];\n"));
    const Schedule sched =
        scheduleRestrictionAware(gey.physical, gey.topology);
    const PulseProgram program = lowerToPulses(gey.physical, sched);
    EXPECT_EQ(static_cast<long>(program.pulses.size()),
              gey.stats.totalPulses);
    EXPECT_EQ(program.makespan, gey.stats.depthPulses);
    // Every CCZ contributes exactly one 2*pi pulse.
    EXPECT_EQ(program.countKind(PulseKind::Rydberg2Pi),
              gey.stats.czCount + gey.stats.cczCount);
}

TEST(CrossModule, CczRestrictionZoneSerializesNeighbors)
{
    const auto topo = Topology::makeTriangular(3, 3);
    const auto &tri = topo.triangles().front();
    Circuit c(topo.numAtoms());
    c.ccz(tri[0], tri[1], tri[2]);
    // A U3 on a restricted atom must wait for all five CCZ pulses.
    const auto zone = topo.restrictionZone({tri[0], tri[1], tri[2]});
    ASSERT_FALSE(zone.empty());
    c.u3(zone.front(), 0, 0, 0);
    const auto sched = scheduleRestrictionAware(c, topo);
    EXPECT_EQ(sched.start[1], 5);
    EXPECT_EQ(sched.makespan, 6);
}

TEST(CrossModule, GeyserOutputExactNoiseMatchesTrajectories)
{
    // Compile a small circuit with Geyser and compare the noisy output
    // of the exact density-matrix channel against trajectory sampling.
    Circuit logical(3);
    logical.h(0);
    logical.cx(0, 1);
    logical.ccx(0, 1, 2);
    const CompileResult gey = compileGeyser(logical);
    ASSERT_LE(gey.physical.numQubits(), 6);

    const NoiseModel nm = NoiseModel::withRate(0.01);
    const auto exact = exactNoisyDistribution(gey.physical, nm);
    TrajectoryConfig cfg;
    cfg.trajectories = 20000;
    cfg.seed = 17;
    const auto sampled = noisyDistribution(gey.physical, nm, cfg);
    EXPECT_LT(totalVariationDistance(exact, sampled), 0.015);
}

TEST(CrossModule, DrawHandlesCompiledCircuits)
{
    const CompileResult gey = compileGeyser(circuitFromQasm(
        "OPENQASM 2.0;\nqreg q[3];\nccx q[0],q[1],q[2];\n"));
    const std::string art = drawCircuit(gey.physical, 12);
    EXPECT_NE(art.find("q0:"), std::string::npos);
    EXPECT_FALSE(art.empty());
}

TEST(CrossModule, CacheSurvivesCompileReload)
{
    const Circuit logical = circuitFromQasm(
        "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n");
    const auto gey = compileGeyser(logical);
    const std::string path = "/tmp/geyser_crossmodule_cache.txt";
    saveCompileResult(path, gey);
    const auto loaded = loadCompileResult(path, logical);
    ASSERT_TRUE(loaded.has_value());
    // The reloaded circuit behaves identically under evaluation.
    EXPECT_NEAR(idealTvd(*loaded), idealTvd(gey), 1e-12);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace geyser
