/**
 * @file
 * Block-composition tests (Algorithm 2): exact resynthesis of
 * entangler-free blocks, recomposition of decomposed Toffoli patterns
 * into native CCZ, pulse-budget cutoffs, and equivalence guarantees.
 */
#include <gtest/gtest.h>

#include "compose/composer.hpp"
#include "sim/unitary_sim.hpp"
#include "transpile/basis.hpp"
#include "transpile/passes.hpp"

namespace geyser {
namespace {

/** The adopted circuit must match the block within the HSD threshold. */
void
expectEquivalent(const Circuit &block, const ComposeResult &result,
                 double tol = 2e-5)
{
    EXPECT_LT(circuitHsd(block, result.circuit), tol);
}

TEST(Composer, EntanglerFreeBlockBecomesU3PerQubit)
{
    Circuit block(3);
    block.u3(0, 0.3, 0.2, 0.1);
    block.u3(1, 1.0, -0.5, 0.4);
    block.u3(0, 0.7, 0.0, 0.2);
    block.u3(2, 0.1, 0.1, 0.1);
    block.u3(1, 0.6, 0.3, -0.3);
    const auto result = composeBlock(block);
    EXPECT_TRUE(result.composed);
    EXPECT_EQ(result.circuit.size(), 3u);  // One U3 per active qubit.
    EXPECT_EQ(result.evaluations, 0);      // Analytic path, no search.
    expectEquivalent(block, result, 1e-9);
}

TEST(Composer, IdentityRunDropsEntirely)
{
    Circuit block(2);
    block.u3(0, kPi / 2, 0, kPi);  // H
    block.u3(0, kPi / 2, 0, kPi);  // H
    const auto result = composeBlock(block);
    EXPECT_TRUE(result.composed);
    EXPECT_EQ(result.circuit.size(), 0u);
}

TEST(Composer, RecomposesDecomposedCczIntoNativeCcz)
{
    // The headline capability: a lowered CCZ (6 CZ + 9 U3, 27 pulses)
    // composes back to a single native CCZ layer (11 pulses).
    Circuit logical(3);
    logical.ccz(0, 1, 2);
    Circuit block = decomposeToBasis(logical);
    fuseU3Pass(block, true);

    const auto result = composeBlock(block);
    EXPECT_TRUE(result.composed);
    EXPECT_EQ(result.layersUsed, 1);
    EXPECT_EQ(result.circuit.countKind(GateKind::CCZ), 1);
    EXPECT_LE(result.circuit.totalPulses(), 11);
    EXPECT_GT(result.pulsesSaved, 10);
    expectEquivalent(block, result);
}

TEST(Composer, RecomposesDecomposedToffoli)
{
    Circuit logical(3);
    logical.ccx(0, 1, 2);
    Circuit block = decomposeToBasis(logical);
    fuseU3Pass(block, true);
    const auto result = composeBlock(block);
    EXPECT_TRUE(result.composed);
    EXPECT_LE(result.circuit.totalPulses(), 11);
    expectEquivalent(block, result);
}

TEST(Composer, KeepsOriginalWhenBlockIsAlreadyCheap)
{
    // A lone CZ (3 pulses) cannot be beaten by any ansatz (>= 7 pulses).
    Circuit block(2);
    block.cz(0, 1);
    const auto result = composeBlock(block);
    EXPECT_FALSE(result.composed);
    EXPECT_EQ(result.circuit.size(), 1u);
    EXPECT_EQ(result.pulsesSaved, 0);
}

TEST(Composer, ComposesTwoQubitBlocks)
{
    // A dense 2-qubit sequence (24 pulses): any 2-qubit unitary fits a
    // 3-layer CZ ansatz (17 pulses), so composition must win.
    Circuit block(2);
    block.u3(0, 0.4, 0.2, 0.7);
    block.u3(1, 0.8, -0.1, 0.2);
    block.cz(0, 1);
    block.u3(1, 1.4, -0.2, 0.1);
    block.u3(0, 0.3, 0.9, 0.0);
    block.cz(0, 1);
    block.u3(0, 0.9, 0.1, 0.3);
    block.u3(1, -0.4, 0.2, 0.2);
    block.cz(0, 1);
    block.u3(1, 0.2, 0.5, -0.8);
    block.cz(0, 1);
    block.u3(0, 1.1, 0.6, 0.2);
    block.u3(1, 0.7, 0.7, 0.7);
    block.u3(0, 0.1, 0.0, 0.4);
    block.u3(1, 0.3, 0.1, 0.0);
    const auto result = composeBlock(block);
    EXPECT_TRUE(result.composed);
    EXPECT_LT(result.circuit.totalPulses(), block.totalPulses());
    expectEquivalent(block, result);
}

TEST(Composer, AdoptedCircuitNeverCostsMorePulses)
{
    Circuit block(3);
    block.u3(0, 0.3, 0.0, 0.0);
    block.cz(0, 1);
    block.cz(1, 2);
    block.u3(2, 0.8, 0.2, 0.0);
    const auto result = composeBlock(block);
    EXPECT_LE(result.circuit.totalPulses(), block.totalPulses());
    expectEquivalent(block, result);
}

TEST(Composer, RejectsOversizedBlocks)
{
    Circuit block(4);
    EXPECT_THROW(composeBlock(block), std::invalid_argument);
}

TEST(Composer, DualAnnealingOptimizerAlsoComposes)
{
    Circuit logical(3);
    logical.ccz(0, 1, 2);
    Circuit block = decomposeToBasis(logical);
    fuseU3Pass(block, true);

    ComposeOptions opts;
    opts.optimizer = ComposeOptimizer::DualAnnealing;
    opts.annealingEvaluations = 100000;
    const auto result = composeBlock(block, opts);
    // Dual annealing plus rotosolve polish should still find the CCZ.
    EXPECT_TRUE(result.composed);
    expectEquivalent(block, result);
}

TEST(Composer, ThresholdIsRespected)
{
    Circuit logical(3);
    logical.ccz(0, 1, 2);
    Circuit block = decomposeToBasis(logical);
    ComposeOptions opts;
    opts.threshold = 1e-7;
    const auto result = composeBlock(block, opts);
    if (result.composed)
        EXPECT_LE(result.hsd, 1e-7);
}

TEST(Rotosolve, ConvergesFromNearbyStart)
{
    // Rotosolve is a (coordinate-wise exact) local method: from a start
    // near the truth it must converge back to the truth.
    const Ansatz ansatz(3, 1);
    std::vector<double> truth(18);
    for (size_t i = 0; i < truth.size(); ++i)
        truth[i] = 0.1 * static_cast<double>(i + 1);
    const Matrix target = ansatz.unitary(truth);

    std::vector<double> angles = truth;
    for (size_t i = 0; i < angles.size(); ++i)
        angles[i] += (i % 2 ? 0.05 : -0.05);
    long evals = 0;
    const double hsd = rotosolve(ansatz, target, angles, 200, 1e-10, evals);
    EXPECT_LT(hsd, 1e-5);
    EXPECT_GT(evals, 0);
    EXPECT_LT(hilbertSchmidtDistance(ansatz.unitary(angles), target), 1e-5);
}

TEST(Rotosolve, MonotoneNonIncreasingAcrossSweepBudgets)
{
    const Ansatz ansatz(3, 1);
    std::vector<double> truth(18, 0.77);
    const Matrix target = ansatz.unitary(truth);
    double prev = 1.0;
    for (const int sweeps : {1, 3, 10, 50}) {
        std::vector<double> angles(18, 0.0);
        long evals = 0;
        const double hsd =
            rotosolve(ansatz, target, angles, sweeps, 0.0, evals);
        EXPECT_LE(hsd, prev + 1e-12) << sweeps;
        prev = hsd;
    }
}

TEST(Composer, ThreeQubitRandomTwoLayerTargetComposes)
{
    // A target built from a 2-layer ansatz circuit must compose within
    // 2 layers (pulse budget permitting).
    const Ansatz gen(3, 2);
    std::vector<double> truth(gen.numAngles());
    for (size_t i = 0; i < truth.size(); ++i)
        truth[i] = 0.2 + 0.13 * static_cast<double>(i);
    Circuit block = gen.toCircuit(truth);
    // Inflate the block with its own decomposed CCZs so the pulse budget
    // allows recomposition.
    Circuit inflated = decomposeToBasis(block);
    // Use the split-aware entry point (the one the pipeline uses): the
    // inflated block may compose whole or via its halves.
    const auto result = composeBlockCached(inflated);
    EXPECT_TRUE(result.composed);
    // Over-parameterized depths are often found before the minimal one
    // (benign non-convexity), so only the pulse win is guaranteed.
    EXPECT_LE(result.layersUsed, 6);
    EXPECT_LT(result.circuit.totalPulses(), inflated.totalPulses());
    expectEquivalent(inflated, result, 4e-5);
}

}  // namespace
}  // namespace geyser
