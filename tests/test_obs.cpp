/**
 * @file
 * Tests for the observability subsystem (src/obs): the enable flag and
 * RAII scopes, span nesting on one thread and across pool workers,
 * counter/gauge/histogram semantics, the JSON value class, both
 * exporters (Chrome trace_event and JSONL), the run report, the
 * thread-pool activity counters, the pipeline wall-time fields and
 * their cache round-trip, and a smoke test that the disabled hooks
 * stay in the nanosecond range.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "algos/algos.hpp"
#include "common/thread_pool.hpp"
#include "geyser/pipeline.hpp"
#include "io/serialize.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"

namespace geyser {
namespace {

/** Every obs test runs against fresh, enabled state and leaves it off. */
class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::setEnabled(false);
        obs::reset();
    }
    void TearDown() override
    {
        obs::setEnabled(false);
        obs::reset();
    }
};

const obs::TraceEvent *
findEvent(const std::vector<obs::TraceEvent> &events, const std::string &name)
{
    for (const auto &e : events)
        if (e.name == name)
            return &e;
    return nullptr;
}

TEST_F(ObsTest, DisabledByDefaultAndScopeRestores)
{
    EXPECT_FALSE(obs::enabled());
    {
        obs::EnabledScope scope(true);
        EXPECT_TRUE(obs::enabled());
        {
            // A nested no-op scope must not disable the enclosing session.
            obs::EnabledScope inner(false);
            EXPECT_TRUE(obs::enabled());
        }
        EXPECT_TRUE(obs::enabled());
    }
    EXPECT_FALSE(obs::enabled());
}

TEST_F(ObsTest, SpansRecordNothingWhileDisabled)
{
    {
        obs::Span span("ghost");
        EXPECT_FALSE(span.active());
        span.arg("ignored", 1.0);
    }
    obs::counter("ghost.counter").add(5);
    obs::gauge("ghost.gauge").set(2.5);
    obs::histogram("ghost.hist").record(10.0);
    EXPECT_TRUE(obs::events().empty());
    EXPECT_EQ(obs::counter("ghost.counter").value(), 0);
    EXPECT_EQ(obs::gauge("ghost.gauge").value(), 0.0);
    EXPECT_EQ(obs::histogram("ghost.hist").snapshot().count, 0);
}

TEST_F(ObsTest, SpanNestingDepthsAndContainment)
{
    obs::setEnabled(true);
    {
        obs::Span outer("outer");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        {
            obs::Span inner("inner");
            inner.arg("key", 42.0);
            inner.arg("label", "value");
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        EXPECT_GT(outer.elapsedMicros(), 0u);
    }
    const auto events = obs::events();
    ASSERT_EQ(events.size(), 2u);
    const auto *outer = findEvent(events, "outer");
    const auto *inner = findEvent(events, "inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->phase, 'X');
    EXPECT_EQ(outer->depth, 0);
    EXPECT_EQ(inner->depth, 1);
    EXPECT_EQ(outer->tid, inner->tid);
    // The inner interval is contained in the outer one.
    EXPECT_GE(inner->tsMicros, outer->tsMicros);
    EXPECT_LE(inner->tsMicros + inner->durMicros,
              outer->tsMicros + outer->durMicros);
    ASSERT_EQ(inner->numArgs.size(), 1u);
    EXPECT_EQ(inner->numArgs[0].first, "key");
    EXPECT_EQ(inner->numArgs[0].second, 42.0);
    ASSERT_EQ(inner->strArgs.size(), 1u);
    EXPECT_EQ(inner->strArgs[0].second, "value");
}

TEST_F(ObsTest, SpansAcrossThreadsGetDistinctThreadIds)
{
    obs::setEnabled(true);
    // A private 2-worker pool (the machine may have one core): a barrier
    // inside the first two tasks guarantees both workers participate.
    ThreadPool pool(2);
    std::mutex m;
    std::condition_variable cv;
    int arrived = 0;
    for (int i = 0; i < 2; ++i) {
        pool.submit([&] {
            obs::Span span("worker.task", "test");
            std::unique_lock<std::mutex> lock(m);
            ++arrived;
            cv.notify_all();
            cv.wait(lock, [&] { return arrived == 2; });
        });
    }
    pool.waitIdle();
    std::set<int> tids;
    for (const auto &e : obs::events())
        if (e.name == "worker.task")
            tids.insert(e.tid);
    EXPECT_EQ(tids.size(), 2u);
    // Workers named themselves for the trace exports.
    int named = 0;
    for (const auto &[tid, name] : obs::threadNames())
        if (name.rfind("geyser-wk", 0) == 0 && tids.count(tid))
            ++named;
    EXPECT_EQ(named, 2);
}

TEST_F(ObsTest, CounterGaugeSemantics)
{
    obs::setEnabled(true);
    obs::Counter &c = obs::counter("test.counter");
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42);
    EXPECT_EQ(&c, &obs::counter("test.counter"))
        << "registry references must be stable";
    obs::gauge("test.gauge").set(2.5);
    EXPECT_EQ(obs::gauge("test.gauge").value(), 2.5);
    obs::reset();
    EXPECT_EQ(c.value(), 0) << "reset zeroes in place";
    EXPECT_EQ(obs::gauge("test.gauge").value(), 0.0);
}

TEST_F(ObsTest, HistogramBucketsAndPercentiles)
{
    obs::setEnabled(true);
    obs::Histogram &h = obs::histogram("test.hist");
    for (int i = 0; i < 99; ++i)
        h.record(2.0);  // Bucket [2,4).
    h.record(1000.0);   // One far outlier.
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 100);
    EXPECT_DOUBLE_EQ(snap.min, 2.0);
    EXPECT_DOUBLE_EQ(snap.max, 1000.0);
    EXPECT_NEAR(snap.mean(), (99 * 2.0 + 1000.0) / 100.0, 1e-9);
    // p50 lands in the [2,4) bucket; p100 in the outlier's bucket.
    EXPECT_LE(snap.percentile(0.5), 4.0);
    EXPECT_GE(snap.percentile(1.0), 1000.0);
    long total = 0;
    for (const long b : snap.buckets)
        total += b;
    EXPECT_EQ(total, snap.count);
    // Bucket upper bounds are the base-2 edges.
    EXPECT_DOUBLE_EQ(obs::Histogram::bucketUpperBound(0), 1.0);
    EXPECT_DOUBLE_EQ(obs::Histogram::bucketUpperBound(3), 8.0);
}

TEST_F(ObsTest, JsonRoundTrip)
{
    obs::Json root = obs::Json::object();
    root.set("string", "with \"quotes\" and \n newline");
    root.set("number", 12345.0);
    root.set("flag", true);
    root.set("nothing", obs::Json());
    obs::Json arr = obs::Json::array();
    arr.push(1.0);
    arr.push("two");
    root.set("list", std::move(arr));

    const obs::Json back = obs::Json::parse(root.dump());
    ASSERT_NE(back.find("string"), nullptr);
    EXPECT_EQ(back.find("string")->str(), "with \"quotes\" and \n newline");
    EXPECT_EQ(back.find("number")->number(), 12345.0);
    EXPECT_TRUE(back.find("flag")->boolean());
    EXPECT_TRUE(back.find("nothing")->isNull());
    EXPECT_EQ(back.find("list")->size(), 2u);
    // Pretty printing parses back to the same structure.
    EXPECT_EQ(obs::Json::parse(root.dump(2)).dump(), back.dump());
    EXPECT_THROW(obs::Json::parse("{broken"), std::invalid_argument);
}

TEST_F(ObsTest, ChromeTraceExportIsValidAndComplete)
{
    obs::setEnabled(true);
    obs::setThreadName("test-main");
    {
        obs::Span span("alpha", "cat");
        span.arg("n", 3.0);
        obs::Span child("beta", "cat");
    }
    obs::counterEvent("queue", 7.0);

    const obs::Json doc = obs::Json::parse(obs::chromeTraceJson());
    const obs::Json *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->type(), obs::Json::Type::Array);

    bool sawAlpha = false, sawBeta = false, sawCounter = false,
         sawThreadName = false;
    for (const obs::Json &e : events->items()) {
        // Chrome trace_event required keys.
        ASSERT_NE(e.find("name"), nullptr);
        ASSERT_NE(e.find("ph"), nullptr);
        ASSERT_NE(e.find("pid"), nullptr);
        ASSERT_NE(e.find("tid"), nullptr);
        const std::string ph = e.find("ph")->str();
        const std::string name = e.find("name")->str();
        if (ph == "X") {
            ASSERT_NE(e.find("ts"), nullptr);
            ASSERT_NE(e.find("dur"), nullptr);
            if (name == "alpha") {
                sawAlpha = true;
                const obs::Json *args = e.find("args");
                ASSERT_NE(args, nullptr);
                EXPECT_EQ(args->find("n")->number(), 3.0);
            }
            sawBeta = sawBeta || name == "beta";
        } else if (ph == "C") {
            sawCounter = sawCounter || name == "queue";
        } else if (ph == "M" && name == "thread_name") {
            const obs::Json *args = e.find("args");
            ASSERT_NE(args, nullptr);
            sawThreadName =
                sawThreadName || args->find("name")->str() == "test-main";
        }
    }
    EXPECT_TRUE(sawAlpha);
    EXPECT_TRUE(sawBeta);
    EXPECT_TRUE(sawCounter);
    EXPECT_TRUE(sawThreadName);
}

TEST_F(ObsTest, MetricsJsonlEveryLineParsesAndCoversMetrics)
{
    obs::setEnabled(true);
    {
        obs::Span span("gamma");
    }
    obs::counter("test.jsonl_counter").add(9);
    obs::gauge("test.jsonl_gauge").set(1.5);
    obs::histogram("test.jsonl_hist").record(4.0);

    std::set<std::string> kinds;
    std::set<std::string> names;
    std::istringstream in(obs::metricsJsonl());
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const obs::Json row = obs::Json::parse(line);
        ASSERT_NE(row.find("type"), nullptr) << line;
        kinds.insert(row.find("type")->str());
        if (row.find("name"))
            names.insert(row.find("name")->str());
    }
    EXPECT_TRUE(kinds.count("span"));
    EXPECT_TRUE(kinds.count("counter"));
    EXPECT_TRUE(kinds.count("gauge"));
    EXPECT_TRUE(kinds.count("histogram"));
    EXPECT_TRUE(names.count("gamma"));
    EXPECT_TRUE(names.count("test.jsonl_counter"));
    EXPECT_TRUE(names.count("test.jsonl_hist"));
}

TEST_F(ObsTest, RunReportAggregatesStagesAndMetrics)
{
    obs::setEnabled(true);
    {
        obs::Span span("stage.work");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    obs::counter("report.counter").add(3);

    obs::RunReport report("test-tool");
    report.setConfig("mode", "unit");
    obs::Json row = obs::Json::object();
    row.set("name", "circ");
    report.addCircuit(std::move(row));

    const obs::Json doc = report.toJson();
    EXPECT_EQ(doc.find("tool")->str(), "test-tool");
    EXPECT_FALSE(doc.find("gitSha")->str().empty());
    EXPECT_NE(doc.find("timestamp"), nullptr);
    EXPECT_EQ(doc.find("config")->find("mode")->str(), "unit");
    EXPECT_EQ(doc.find("circuits")->size(), 1u);
    const obs::Json *stages = doc.find("stages");
    ASSERT_NE(stages, nullptr);
    const obs::Json *stage = nullptr;
    for (const obs::Json &s : stages->items())
        if (s.find("name") && s.find("name")->str() == "stage.work")
            stage = &s;
    ASSERT_NE(stage, nullptr);
    EXPECT_EQ(stage->find("count")->number(), 1.0);
    EXPECT_GT(stage->find("wallMs")->number(), 0.0);
    // Counters land in metrics.counters.
    const obs::Json *counters = doc.find("metrics")->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->find("report.counter")->number(), 3.0);

    // write() produces a parseable file.
    const std::string path = ::testing::TempDir() + "obs_report.json";
    report.write(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NO_THROW(obs::Json::parse(buf.str()));
    std::remove(path.c_str());
}

TEST_F(ObsTest, ThreadPoolCountersTrackSubmittedAndCompleted)
{
    ThreadPool pool(2);
    constexpr int kTasks = 32;
    std::atomic<int> ran{0};
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.waitIdle();
    const PoolStats stats = pool.snapshot();
    EXPECT_EQ(ran.load(), kTasks);
    EXPECT_EQ(stats.submitted, kTasks);
    EXPECT_EQ(stats.completed, kTasks);
    EXPECT_EQ(stats.inFlight, 0);
    EXPECT_EQ(stats.queued, 0);
    EXPECT_EQ(stats.workers, 2);
    // Utilization over a fake 1-second interval is a sane fraction.
    const PoolStats start;
    EXPECT_GE(stats.utilizationSince(start, 1e6), 0.0);
}

TEST_F(ObsTest, PipelineTraceOptionRecordsNestedStages)
{
    PipelineOptions options;
    options.trace = true;
    const CompileResult result = compileGeyser(adderBenchmark(1, true),
                                               options);
    EXPECT_FALSE(obs::enabled()) << "EnabledScope must restore state";
    const auto events = obs::events();
    const auto *compile = findEvent(events, "compile");
    const auto *transpile = findEvent(events, "transpile");
    const auto *blocking = findEvent(events, "blocking");
    const auto *compose = findEvent(events, "compose");
    ASSERT_NE(compile, nullptr);
    ASSERT_NE(transpile, nullptr);
    ASSERT_NE(blocking, nullptr);
    ASSERT_NE(compose, nullptr);
    EXPECT_NE(findEvent(events, "compose.block"), nullptr);
    // Stage spans nest inside the top-level compile span.
    for (const auto *stage : {transpile, blocking, compose}) {
        EXPECT_GE(stage->tsMicros, compile->tsMicros);
        EXPECT_LE(stage->tsMicros + stage->durMicros,
                  compile->tsMicros + compile->durMicros);
    }
    EXPECT_GT(result.blockCount, 0);
}

TEST_F(ObsTest, CompileResultWallTimesPopulatedUnconditionally)
{
    // No tracing enabled: wall times must still be measured.
    const CompileResult gey = compileGeyser(adderBenchmark(1, true));
    EXPECT_GT(gey.totalMs, 0.0);
    EXPECT_GT(gey.transpileMs, 0.0);
    EXPECT_GT(gey.blockingMs, 0.0);
    EXPECT_GT(gey.composeMs, 0.0);
    EXPECT_LE(gey.transpileMs + gey.blockingMs + gey.composeMs,
              gey.totalMs * 1.5);

    const CompileResult base = compileBaseline(adderBenchmark(1, true));
    EXPECT_GT(base.totalMs, 0.0);
    EXPECT_EQ(base.blockingMs, 0.0) << "baseline never runs blocking";
    EXPECT_EQ(base.composeMs, 0.0);
}

TEST_F(ObsTest, SerializeRoundTripsWallTimes)
{
    const Circuit logical = adderBenchmark(1, true);
    const CompileResult result = compileGeyser(logical);
    const std::string path = ::testing::TempDir() + "obs_times_cache.txt";
    saveCompileResult(path, result);
    const auto loaded = loadCompileResult(path, logical);
    std::remove(path.c_str());
    ASSERT_TRUE(loaded.has_value());
    EXPECT_DOUBLE_EQ(loaded->transpileMs, result.transpileMs);
    EXPECT_DOUBLE_EQ(loaded->blockingMs, result.blockingMs);
    EXPECT_DOUBLE_EQ(loaded->composeMs, result.composeMs);
    EXPECT_DOUBLE_EQ(loaded->totalMs, result.totalMs);
}

TEST_F(ObsTest, DisabledHooksStayCheap)
{
    ASSERT_FALSE(obs::enabled());
    obs::Counter &c = obs::counter("overhead.counter");
    constexpr int kIters = 10'000'000;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
        obs::Span span("overhead.span");
        c.add();
    }
    const double ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        kIters;
    EXPECT_EQ(c.value(), 0);
    // One span + one counter hook. Each is an atomic load and branch
    // (~1 ns); 100 ns/pair leaves two orders of headroom for CI noise.
    EXPECT_LT(ns, 100.0) << "disabled obs hooks cost " << ns
                         << " ns per span+counter pair";
}

}  // namespace
}  // namespace geyser
