/**
 * @file
 * Tests for the observability subsystem (src/obs): the enable flag and
 * RAII scopes, span nesting on one thread and across pool workers,
 * counter/gauge/histogram semantics, the JSON value class, both
 * exporters (Chrome trace_event and JSONL), the run report, the
 * thread-pool activity counters, the pipeline wall-time fields and
 * their cache round-trip, and a smoke test that the disabled hooks
 * stay in the nanosecond range.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "algos/algos.hpp"
#include "common/thread_pool.hpp"
#include "geyser/pipeline.hpp"
#include "io/serialize.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"

namespace geyser {
namespace {

/** Every obs test runs against fresh, enabled state and leaves it off. */
class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::setEnabled(false);
        obs::reset();
    }
    void TearDown() override
    {
        obs::setEnabled(false);
        obs::reset();
        // Restore the process-wide capacity knobs tests may shrink.
        obs::setEventCapacity(obs::kDefaultEventCapacity);
        obs::setTraceLimits(2048, 64);
    }
};

const obs::TraceEvent *
findEvent(const std::vector<obs::TraceEvent> &events, const std::string &name)
{
    for (const auto &e : events)
        if (e.name == name)
            return &e;
    return nullptr;
}

TEST_F(ObsTest, DisabledByDefaultAndScopeRestores)
{
    EXPECT_FALSE(obs::enabled());
    {
        obs::EnabledScope scope(true);
        EXPECT_TRUE(obs::enabled());
        {
            // A nested no-op scope must not disable the enclosing session.
            obs::EnabledScope inner(false);
            EXPECT_TRUE(obs::enabled());
        }
        EXPECT_TRUE(obs::enabled());
    }
    EXPECT_FALSE(obs::enabled());
}

TEST_F(ObsTest, SpansRecordNothingWhileDisabled)
{
    {
        obs::Span span("ghost");
        EXPECT_FALSE(span.active());
        span.arg("ignored", 1.0);
    }
    obs::counter("ghost.counter").add(5);
    obs::gauge("ghost.gauge").set(2.5);
    obs::histogram("ghost.hist").record(10.0);
    EXPECT_TRUE(obs::events().empty());
    EXPECT_EQ(obs::counter("ghost.counter").value(), 0);
    EXPECT_EQ(obs::gauge("ghost.gauge").value(), 0.0);
    EXPECT_EQ(obs::histogram("ghost.hist").snapshot().count, 0);
}

TEST_F(ObsTest, SpanNestingDepthsAndContainment)
{
    obs::setEnabled(true);
    {
        obs::Span outer("outer");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        {
            obs::Span inner("inner");
            inner.arg("key", 42.0);
            inner.arg("label", "value");
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        EXPECT_GT(outer.elapsedMicros(), 0u);
    }
    const auto events = obs::events();
    ASSERT_EQ(events.size(), 2u);
    const auto *outer = findEvent(events, "outer");
    const auto *inner = findEvent(events, "inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->phase, 'X');
    EXPECT_EQ(outer->depth, 0);
    EXPECT_EQ(inner->depth, 1);
    EXPECT_EQ(outer->tid, inner->tid);
    // The inner interval is contained in the outer one.
    EXPECT_GE(inner->tsMicros, outer->tsMicros);
    EXPECT_LE(inner->tsMicros + inner->durMicros,
              outer->tsMicros + outer->durMicros);
    ASSERT_EQ(inner->numArgs.size(), 1u);
    EXPECT_EQ(inner->numArgs[0].first, "key");
    EXPECT_EQ(inner->numArgs[0].second, 42.0);
    ASSERT_EQ(inner->strArgs.size(), 1u);
    EXPECT_EQ(inner->strArgs[0].second, "value");
}

TEST_F(ObsTest, SpansAcrossThreadsGetDistinctThreadIds)
{
    obs::setEnabled(true);
    // A private 2-worker pool (the machine may have one core): a barrier
    // inside the first two tasks guarantees both workers participate.
    ThreadPool pool(2);
    std::mutex m;
    std::condition_variable cv;
    int arrived = 0;
    for (int i = 0; i < 2; ++i) {
        pool.submit([&] {
            obs::Span span("worker.task", "test");
            std::unique_lock<std::mutex> lock(m);
            ++arrived;
            cv.notify_all();
            cv.wait(lock, [&] { return arrived == 2; });
        });
    }
    pool.waitIdle();
    std::set<int> tids;
    for (const auto &e : obs::events())
        if (e.name == "worker.task")
            tids.insert(e.tid);
    EXPECT_EQ(tids.size(), 2u);
    // Workers named themselves for the trace exports.
    int named = 0;
    for (const auto &[tid, name] : obs::threadNames())
        if (name.rfind("geyser-wk", 0) == 0 && tids.count(tid))
            ++named;
    EXPECT_EQ(named, 2);
}

TEST_F(ObsTest, CounterGaugeSemantics)
{
    obs::setEnabled(true);
    obs::Counter &c = obs::counter("test.counter");
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42);
    EXPECT_EQ(&c, &obs::counter("test.counter"))
        << "registry references must be stable";
    obs::gauge("test.gauge").set(2.5);
    EXPECT_EQ(obs::gauge("test.gauge").value(), 2.5);
    obs::reset();
    EXPECT_EQ(c.value(), 0) << "reset zeroes in place";
    EXPECT_EQ(obs::gauge("test.gauge").value(), 0.0);
}

TEST_F(ObsTest, HistogramBucketsAndPercentiles)
{
    obs::setEnabled(true);
    obs::Histogram &h = obs::histogram("test.hist");
    for (int i = 0; i < 99; ++i)
        h.record(2.0);  // Bucket [2,4).
    h.record(1000.0);   // One far outlier.
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 100);
    EXPECT_DOUBLE_EQ(snap.min, 2.0);
    EXPECT_DOUBLE_EQ(snap.max, 1000.0);
    EXPECT_NEAR(snap.mean(), (99 * 2.0 + 1000.0) / 100.0, 1e-9);
    // p50 lands in the [2,4) bucket; p100 in the outlier's bucket.
    EXPECT_LE(snap.percentile(0.5), 4.0);
    EXPECT_GE(snap.percentile(1.0), 1000.0);
    long total = 0;
    for (const long b : snap.buckets)
        total += b;
    EXPECT_EQ(total, snap.count);
    // Bucket upper bounds are the base-2 edges.
    EXPECT_DOUBLE_EQ(obs::Histogram::bucketUpperBound(0), 1.0);
    EXPECT_DOUBLE_EQ(obs::Histogram::bucketUpperBound(3), 8.0);
}

TEST_F(ObsTest, JsonRoundTrip)
{
    obs::Json root = obs::Json::object();
    root.set("string", "with \"quotes\" and \n newline");
    root.set("number", 12345.0);
    root.set("flag", true);
    root.set("nothing", obs::Json());
    obs::Json arr = obs::Json::array();
    arr.push(1.0);
    arr.push("two");
    root.set("list", std::move(arr));

    const obs::Json back = obs::Json::parse(root.dump());
    ASSERT_NE(back.find("string"), nullptr);
    EXPECT_EQ(back.find("string")->str(), "with \"quotes\" and \n newline");
    EXPECT_EQ(back.find("number")->number(), 12345.0);
    EXPECT_TRUE(back.find("flag")->boolean());
    EXPECT_TRUE(back.find("nothing")->isNull());
    EXPECT_EQ(back.find("list")->size(), 2u);
    // Pretty printing parses back to the same structure.
    EXPECT_EQ(obs::Json::parse(root.dump(2)).dump(), back.dump());
    EXPECT_THROW(obs::Json::parse("{broken"), std::invalid_argument);
}

TEST_F(ObsTest, ChromeTraceExportIsValidAndComplete)
{
    obs::setEnabled(true);
    obs::setThreadName("test-main");
    {
        obs::Span span("alpha", "cat");
        span.arg("n", 3.0);
        obs::Span child("beta", "cat");
    }
    obs::counterEvent("queue", 7.0);

    const obs::Json doc = obs::Json::parse(obs::chromeTraceJson());
    const obs::Json *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->type(), obs::Json::Type::Array);

    bool sawAlpha = false, sawBeta = false, sawCounter = false,
         sawThreadName = false;
    for (const obs::Json &e : events->items()) {
        // Chrome trace_event required keys.
        ASSERT_NE(e.find("name"), nullptr);
        ASSERT_NE(e.find("ph"), nullptr);
        ASSERT_NE(e.find("pid"), nullptr);
        ASSERT_NE(e.find("tid"), nullptr);
        const std::string ph = e.find("ph")->str();
        const std::string name = e.find("name")->str();
        if (ph == "X") {
            ASSERT_NE(e.find("ts"), nullptr);
            ASSERT_NE(e.find("dur"), nullptr);
            if (name == "alpha") {
                sawAlpha = true;
                const obs::Json *args = e.find("args");
                ASSERT_NE(args, nullptr);
                EXPECT_EQ(args->find("n")->number(), 3.0);
            }
            sawBeta = sawBeta || name == "beta";
        } else if (ph == "C") {
            sawCounter = sawCounter || name == "queue";
        } else if (ph == "M" && name == "thread_name") {
            const obs::Json *args = e.find("args");
            ASSERT_NE(args, nullptr);
            sawThreadName =
                sawThreadName || args->find("name")->str() == "test-main";
        }
    }
    EXPECT_TRUE(sawAlpha);
    EXPECT_TRUE(sawBeta);
    EXPECT_TRUE(sawCounter);
    EXPECT_TRUE(sawThreadName);
}

TEST_F(ObsTest, MetricsJsonlEveryLineParsesAndCoversMetrics)
{
    obs::setEnabled(true);
    {
        obs::Span span("gamma");
    }
    obs::counter("test.jsonl_counter").add(9);
    obs::gauge("test.jsonl_gauge").set(1.5);
    obs::histogram("test.jsonl_hist").record(4.0);

    std::set<std::string> kinds;
    std::set<std::string> names;
    std::istringstream in(obs::metricsJsonl());
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const obs::Json row = obs::Json::parse(line);
        ASSERT_NE(row.find("type"), nullptr) << line;
        kinds.insert(row.find("type")->str());
        if (row.find("name"))
            names.insert(row.find("name")->str());
    }
    EXPECT_TRUE(kinds.count("span"));
    EXPECT_TRUE(kinds.count("counter"));
    EXPECT_TRUE(kinds.count("gauge"));
    EXPECT_TRUE(kinds.count("histogram"));
    EXPECT_TRUE(names.count("gamma"));
    EXPECT_TRUE(names.count("test.jsonl_counter"));
    EXPECT_TRUE(names.count("test.jsonl_hist"));
}

TEST_F(ObsTest, RunReportAggregatesStagesAndMetrics)
{
    obs::setEnabled(true);
    {
        obs::Span span("stage.work");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    obs::counter("report.counter").add(3);

    obs::RunReport report("test-tool");
    report.setConfig("mode", "unit");
    obs::Json row = obs::Json::object();
    row.set("name", "circ");
    report.addCircuit(std::move(row));

    const obs::Json doc = report.toJson();
    EXPECT_EQ(doc.find("tool")->str(), "test-tool");
    EXPECT_FALSE(doc.find("gitSha")->str().empty());
    EXPECT_NE(doc.find("timestamp"), nullptr);
    EXPECT_EQ(doc.find("config")->find("mode")->str(), "unit");
    EXPECT_EQ(doc.find("circuits")->size(), 1u);
    const obs::Json *stages = doc.find("stages");
    ASSERT_NE(stages, nullptr);
    const obs::Json *stage = nullptr;
    for (const obs::Json &s : stages->items())
        if (s.find("name") && s.find("name")->str() == "stage.work")
            stage = &s;
    ASSERT_NE(stage, nullptr);
    EXPECT_EQ(stage->find("count")->number(), 1.0);
    EXPECT_GT(stage->find("wallMs")->number(), 0.0);
    // Counters land in metrics.counters.
    const obs::Json *counters = doc.find("metrics")->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->find("report.counter")->number(), 3.0);

    // write() produces a parseable file.
    const std::string path = ::testing::TempDir() + "obs_report.json";
    report.write(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NO_THROW(obs::Json::parse(buf.str()));
    std::remove(path.c_str());
}

TEST_F(ObsTest, ThreadPoolCountersTrackSubmittedAndCompleted)
{
    ThreadPool pool(2);
    constexpr int kTasks = 32;
    std::atomic<int> ran{0};
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.waitIdle();
    const PoolStats stats = pool.snapshot();
    EXPECT_EQ(ran.load(), kTasks);
    EXPECT_EQ(stats.submitted, kTasks);
    EXPECT_EQ(stats.completed, kTasks);
    EXPECT_EQ(stats.inFlight, 0);
    EXPECT_EQ(stats.queued, 0);
    EXPECT_EQ(stats.workers, 2);
    // Utilization over a fake 1-second interval is a sane fraction.
    const PoolStats start;
    EXPECT_GE(stats.utilizationSince(start, 1e6), 0.0);
}

TEST_F(ObsTest, PipelineTraceOptionRecordsNestedStages)
{
    PipelineOptions options;
    options.trace = true;
    const CompileResult result = compileGeyser(adderBenchmark(1, true),
                                               options);
    EXPECT_FALSE(obs::enabled()) << "EnabledScope must restore state";
    const auto events = obs::events();
    const auto *compile = findEvent(events, "compile");
    const auto *transpile = findEvent(events, "transpile");
    const auto *blocking = findEvent(events, "blocking");
    const auto *compose = findEvent(events, "compose");
    ASSERT_NE(compile, nullptr);
    ASSERT_NE(transpile, nullptr);
    ASSERT_NE(blocking, nullptr);
    ASSERT_NE(compose, nullptr);
    EXPECT_NE(findEvent(events, "compose.block"), nullptr);
    // Stage spans nest inside the top-level compile span.
    for (const auto *stage : {transpile, blocking, compose}) {
        EXPECT_GE(stage->tsMicros, compile->tsMicros);
        EXPECT_LE(stage->tsMicros + stage->durMicros,
                  compile->tsMicros + compile->durMicros);
    }
    EXPECT_GT(result.blockCount, 0);
}

TEST_F(ObsTest, CompileResultWallTimesPopulatedUnconditionally)
{
    // No tracing enabled: wall times must still be measured.
    const CompileResult gey = compileGeyser(adderBenchmark(1, true));
    EXPECT_GT(gey.totalMs, 0.0);
    EXPECT_GT(gey.transpileMs, 0.0);
    EXPECT_GT(gey.blockingMs, 0.0);
    EXPECT_GT(gey.composeMs, 0.0);
    EXPECT_LE(gey.transpileMs + gey.blockingMs + gey.composeMs,
              gey.totalMs * 1.5);

    const CompileResult base = compileBaseline(adderBenchmark(1, true));
    EXPECT_GT(base.totalMs, 0.0);
    EXPECT_EQ(base.blockingMs, 0.0) << "baseline never runs blocking";
    EXPECT_EQ(base.composeMs, 0.0);
}

TEST_F(ObsTest, SerializeRoundTripsWallTimes)
{
    const Circuit logical = adderBenchmark(1, true);
    const CompileResult result = compileGeyser(logical);
    const std::string path = ::testing::TempDir() + "obs_times_cache.txt";
    saveCompileResult(path, result);
    const auto loaded = loadCompileResult(path, logical);
    std::remove(path.c_str());
    ASSERT_TRUE(loaded.has_value());
    EXPECT_DOUBLE_EQ(loaded->transpileMs, result.transpileMs);
    EXPECT_DOUBLE_EQ(loaded->blockingMs, result.blockingMs);
    EXPECT_DOUBLE_EQ(loaded->composeMs, result.composeMs);
    EXPECT_DOUBLE_EQ(loaded->totalMs, result.totalMs);
}

TEST_F(ObsTest, RingBufferBoundsEventsAndCountsDrops)
{
    obs::setEnabled(true);
    obs::setEventCapacity(8);
    EXPECT_EQ(obs::eventCapacity(), 8u);
    for (int i = 0; i < 20; ++i) {
        obs::Span span(i < 12 ? "old.span" : "new.span");
    }
    const auto events = obs::events();
    ASSERT_EQ(events.size(), 8u) << "ring must stay at capacity";
    EXPECT_EQ(obs::eventsDropped(), 12);
    // The survivors are the newest events, oldest-first order.
    for (const auto &e : events)
        EXPECT_EQ(e.name, "new.span");
    for (size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].tsMicros, events[i - 1].tsMicros);
    // The drop counter is a first-class metric for scrapes/reports.
    bool sawDropCounter = false;
    for (const auto &[name, value] : obs::metricsSnapshot().counters)
        if (name == "obs.events_dropped") {
            sawDropCounter = true;
            EXPECT_EQ(value, 12);
        }
    EXPECT_TRUE(sawDropCounter);
    EXPECT_EQ(obs::counter("obs.events_dropped").value(), 12);
    // Shrinking keeps the newest events and counts the discards.
    obs::setEventCapacity(2);
    EXPECT_EQ(obs::events().size(), 2u);
    EXPECT_EQ(obs::eventsDropped(), 18);
    obs::reset();
    EXPECT_EQ(obs::eventsDropped(), 0);
}

TEST_F(ObsTest, ServiceDomainCountsWhileTracingDisabled)
{
    ASSERT_FALSE(obs::enabled());
    obs::Counter &c = obs::serviceCounter("svc.counter");
    obs::Gauge &g = obs::serviceGauge("svc.gauge");
    obs::Histogram &h = obs::serviceHistogram("svc.hist");
    c.add(3);
    g.set(7.5);
    h.record(4.0);
    EXPECT_EQ(c.value(), 3) << "service domain must count with tracing off";
    EXPECT_EQ(g.value(), 7.5);
    EXPECT_EQ(h.snapshot().count, 1);
    // Trace-domain metrics stay silent in the same mode.
    obs::counter("svc.plain").add(3);
    EXPECT_EQ(obs::counter("svc.plain").value(), 0);
    // Both domains count when tracing is on.
    obs::setEnabled(true);
    c.add();
    obs::counter("svc.plain").add();
    EXPECT_EQ(c.value(), 4);
    EXPECT_EQ(obs::counter("svc.plain").value(), 1);
}

TEST_F(ObsTest, ServicePromotionIsStickyAndSharesTheEntry)
{
    // The same name reached through both accessors is one metric, and
    // promotion to the service domain survives later counter() lookups.
    obs::Counter &plain = obs::counter("svc.shared");
    obs::Counter &promoted = obs::serviceCounter("svc.shared");
    EXPECT_EQ(&plain, &promoted);
    ASSERT_FALSE(obs::enabled());
    obs::counter("svc.shared").add(2);
    EXPECT_EQ(plain.value(), 2);
}

TEST_F(ObsTest, TraceContextCapturesSpansWhileGloballyDisabled)
{
    ASSERT_FALSE(obs::enabled());
    obs::beginTrace(7);
    {
        obs::TraceScope scope(7);
        obs::Span span("traced.work", "test");
        span.arg("n", 1.0);
        obs::Span child("traced.child", "test");
    }
    {
        obs::Span outside("untraced.work");
    }
    EXPECT_TRUE(obs::events().empty())
        << "the global ring must stay quiet while disabled";
    ASSERT_TRUE(obs::hasTrace(7));
    const auto events = obs::traceEvents(7);
    ASSERT_EQ(events.size(), 2u);
    for (const auto &e : events)
        EXPECT_EQ(e.traceId, 7u);
    EXPECT_NE(findEvent(events, "traced.work"), nullptr);
    EXPECT_NE(findEvent(events, "traced.child"), nullptr);
    EXPECT_EQ(findEvent(events, "untraced.work"), nullptr);
    EXPECT_EQ(obs::traceDropped(7), 0);
    // The per-trace event set renders as loadable Chrome trace JSON.
    const obs::Json doc = obs::Json::parse(
        obs::chromeTraceJson(events, obs::threadNames()));
    const obs::Json *rendered = doc.find("traceEvents");
    ASSERT_NE(rendered, nullptr);
    bool sawTraceId = false;
    for (const obs::Json &e : rendered->items()) {
        const obs::Json *args = e.find("args");
        if (args != nullptr && args->find("trace_id") != nullptr)
            sawTraceId = true;
    }
    EXPECT_TRUE(sawTraceId);
}

TEST_F(ObsTest, TraceScopeZeroIsNoOpAndScopesNest)
{
    EXPECT_EQ(obs::currentTraceId(), 0u);
    {
        obs::TraceScope outer(11);
        EXPECT_EQ(obs::currentTraceId(), 11u);
        {
            // The pool-propagation idiom: TraceScope(currentTraceId())
            // re-enters the context, TraceScope(0) must not clear it.
            obs::TraceScope noop(0);
            EXPECT_EQ(obs::currentTraceId(), 11u);
            obs::TraceScope inner(12);
            EXPECT_EQ(obs::currentTraceId(), 12u);
        }
        EXPECT_EQ(obs::currentTraceId(), 11u);
    }
    EXPECT_EQ(obs::currentTraceId(), 0u);
}

TEST_F(ObsTest, TraceBuffersAreBoundedAndEvictedLru)
{
    obs::setTraceLimits(4, 2);
    obs::beginTrace(1);
    {
        obs::TraceScope scope(1);
        for (int i = 0; i < 10; ++i) {
            obs::Span span("burst.span");
        }
    }
    EXPECT_EQ(obs::traceEvents(1).size(), 4u);
    EXPECT_EQ(obs::traceDropped(1), 6);
    // Two more traces evict the oldest buffer (retained cap is 2).
    obs::beginTrace(2);
    obs::beginTrace(3);
    EXPECT_FALSE(obs::hasTrace(1));
    EXPECT_TRUE(obs::hasTrace(2));
    EXPECT_TRUE(obs::hasTrace(3));
    const auto ids = obs::traceIds();
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], 2u);
    EXPECT_EQ(ids[1], 3u);
    EXPECT_TRUE(obs::traceEvents(1).empty());
    EXPECT_EQ(obs::traceDropped(1), -1);
}

TEST_F(ObsTest, TraceContextPropagatesAcrossThePipelinePool)
{
    // The real per-job path: compile under a trace context with global
    // tracing off. Compose-block spans run on pool workers, so this
    // fails unless the pipeline re-enters the scope per block.
    ASSERT_FALSE(obs::enabled());
    obs::beginTrace(42);
    {
        obs::TraceScope scope(42);
        const CompileResult result = compileGeyser(adderBenchmark(1, true));
        EXPECT_GT(result.blockCount, 0);
    }
    const auto events = obs::traceEvents(42);
    EXPECT_NE(findEvent(events, "compile"), nullptr);
    EXPECT_NE(findEvent(events, "transpile"), nullptr);
    EXPECT_NE(findEvent(events, "compose"), nullptr);
    EXPECT_NE(findEvent(events, "compose.block"), nullptr)
        << "pool workers must inherit the submitting thread's trace";
    EXPECT_TRUE(obs::events().empty());
}

TEST_F(ObsTest, PercentileBucketEdges)
{
    obs::setEnabled(true);
    // Empty histogram: all percentiles are 0.
    EXPECT_DOUBLE_EQ(obs::histogram("edge.empty").snapshot().percentile(0.5),
                     0.0);
    // A single sample is every percentile.
    obs::Histogram &one = obs::histogram("edge.one");
    one.record(5.0);
    const auto oneSnap = one.snapshot();
    EXPECT_DOUBLE_EQ(oneSnap.percentile(0.0), 5.0);
    EXPECT_DOUBLE_EQ(oneSnap.percentile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(oneSnap.percentile(1.0), 5.0);
    // Values exactly at the base-2 edges: 2^i opens bucket i+1
    // ([2^i, 2^(i+1))), so the percentile's bucket bound covers it.
    obs::Histogram &edges = obs::histogram("edge.pow2");
    for (const double v : {1.0, 2.0, 4.0, 8.0})
        edges.record(v);
    const auto edgeSnap = edges.snapshot();
    EXPECT_DOUBLE_EQ(edgeSnap.min, 1.0);
    EXPECT_DOUBLE_EQ(edgeSnap.max, 8.0);
    EXPECT_DOUBLE_EQ(edgeSnap.percentile(0.25), 2.0);
    EXPECT_DOUBLE_EQ(edgeSnap.percentile(1.0), 8.0);
    EXPECT_GE(edgeSnap.percentile(0.5), 2.0);
    // Sub-1 values all land in bucket 0 with upper bound 1.
    obs::Histogram &tiny = obs::histogram("edge.tiny");
    for (int i = 0; i < 8; ++i)
        tiny.record(0.1);
    const auto tinySnap = tiny.snapshot();
    EXPECT_EQ(tinySnap.buckets[0], 8);
    EXPECT_LE(tinySnap.percentile(0.99), 1.0);
    EXPECT_DOUBLE_EQ(tinySnap.percentile(1.0), 0.1)
        << "percentile never exceeds the observed max";
}

TEST_F(ObsTest, ScrapeWhileRecordingIsRaceFree)
{
    // A live daemon is scraped (metricsSnapshot/events) and reset while
    // workers record spans and bump metrics. Run all of it concurrently
    // for a bounded burst — the sanitizer presets turn any data race or
    // iterator invalidation into a failure.
    obs::setEnabled(true);
    obs::setEventCapacity(128);
    std::atomic<bool> stop{false};
    std::thread recorder([&] {
        obs::TraceScope scope(99);
        while (!stop.load()) {
            obs::Span span("race.span", "test");
            obs::serviceCounter("race.counter").add();
            obs::serviceHistogram("race.hist").record(3.0);
        }
    });
    std::thread tracer([&] {
        while (!stop.load()) {
            obs::beginTrace(99);
            (void)obs::traceEvents(99);
            (void)obs::hasTrace(99);
        }
    });
    std::thread scraper([&] {
        while (!stop.load()) {
            const auto snap = obs::metricsSnapshot();
            EXPECT_LE(obs::events().size(), obs::eventCapacity());
            (void)snap;
        }
    });
    for (int i = 0; i < 20; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        if (i % 5 == 4)
            obs::reset();
    }
    stop.store(true);
    recorder.join();
    tracer.join();
    scraper.join();
}

TEST_F(ObsTest, DisabledHooksStayCheap)
{
    ASSERT_FALSE(obs::enabled());
    obs::Counter &c = obs::counter("overhead.counter");
    constexpr int kIters = 10'000'000;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
        obs::Span span("overhead.span");
        c.add();
    }
    const double ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        kIters;
    EXPECT_EQ(c.value(), 0);
    RecordProperty("ns_per_pair", std::to_string(ns));
    std::printf("disabled span+counter pair: %.2f ns\n", ns);
    // One span + one counter hook: an atomic load, a thread-local read,
    // and predicted branches (~4 ns measured); 100 ns/pair leaves an
    // order of headroom for CI noise. Sanitizer instrumentation slows
    // every load severalfold — and the suite runs in parallel — so
    // those builds get a proportionally looser bound.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    constexpr double kBound = 1000.0;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
    constexpr double kBound = 1000.0;
#else
    constexpr double kBound = 100.0;
#endif
#else
    constexpr double kBound = 100.0;
#endif
    EXPECT_LT(ns, kBound) << "disabled obs hooks cost " << ns
                          << " ns per span+counter pair";
}

}  // namespace
}  // namespace geyser
