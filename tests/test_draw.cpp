/**
 * @file
 * ASCII circuit-rendering tests.
 */
#include <gtest/gtest.h>

#include "circuit/draw.hpp"

namespace geyser {
namespace {

TEST(Draw, SingleQubitGatesOnOneWire)
{
    Circuit c(1);
    c.h(0);
    c.t(0);
    const auto art = drawCircuit(c);
    EXPECT_NE(art.find("q0:"), std::string::npos);
    EXPECT_NE(art.find("H"), std::string::npos);
    EXPECT_NE(art.find("T"), std::string::npos);
}

TEST(Draw, ControlledGateDrawsConnector)
{
    Circuit c(2);
    c.cx(0, 1);
    const auto art = drawCircuit(c);
    EXPECT_NE(art.find("*"), std::string::npos);
    EXPECT_NE(art.find("X"), std::string::npos);
    EXPECT_NE(art.find("|"), std::string::npos);
}

TEST(Draw, NonAdjacentGateCrossesMiddleWire)
{
    Circuit c(3);
    c.cz(0, 2);
    const auto art = drawCircuit(c);
    // The middle wire row must show the crossing connector.
    std::istringstream in(art);
    std::string line;
    std::getline(in, line);             // q0
    std::getline(in, line);             // spacer
    std::getline(in, line);             // q1
    EXPECT_NE(line.find("|"), std::string::npos) << art;
}

TEST(Draw, IndependentGatesShareColumn)
{
    Circuit c(4);
    c.h(0);
    c.h(1);
    c.h(2);
    c.h(3);
    const auto art = drawCircuit(c);
    // All four H gates pack into one column: every wire row has the
    // same length and exactly one H.
    std::istringstream in(art);
    std::string line;
    int hColumn = -1;
    while (std::getline(in, line)) {
        const auto pos = line.find('H');
        if (pos == std::string::npos)
            continue;
        if (hColumn < 0)
            hColumn = static_cast<int>(pos);
        EXPECT_EQ(static_cast<int>(pos), hColumn);
    }
}

TEST(Draw, DependentGatesUseSeparateColumns)
{
    Circuit c(1);
    c.h(0);
    c.h(0);
    const auto art = drawCircuit(c);
    const auto first = art.find('H');
    const auto second = art.find('H', first + 1);
    EXPECT_NE(second, std::string::npos);
}

TEST(Draw, MaxColumnsTruncates)
{
    Circuit c(1);
    for (int i = 0; i < 10; ++i)
        c.h(0);
    const auto art = drawCircuit(c, 3);
    int count = 0;
    for (const char ch : art)
        if (ch == 'H')
            ++count;
    EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace geyser
