/**
 * @file
 * Statevector simulator tests: basis-state evolution, entanglement,
 * agreement between the generic matrix path and the fast paths.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "sim/statevector.hpp"
#include "sim/unitary_sim.hpp"

namespace geyser {
namespace {

TEST(StateVector, InitialStateIsAllZeros)
{
    StateVector sv(3);
    EXPECT_EQ(sv.dim(), 8u);
    EXPECT_EQ(sv.amplitudes()[0], Complex{1.0});
    EXPECT_NEAR(sv.normSquared(), 1.0, 1e-15);
}

TEST(StateVector, XFlipsQubit)
{
    StateVector sv(2);
    sv.applyX(1);
    EXPECT_EQ(sv.amplitudes()[2], Complex{1.0});
    EXPECT_EQ(sv.amplitudes()[0], Complex{0.0});
}

TEST(StateVector, HadamardCreatesUniformSuperposition)
{
    Circuit c(2);
    c.h(0);
    c.h(1);
    const auto p = idealDistribution(c);
    for (const double v : p)
        EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(StateVector, BellState)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    const auto p = idealDistribution(c);
    EXPECT_NEAR(p[0], 0.5, 1e-12);
    EXPECT_NEAR(p[3], 0.5, 1e-12);
    EXPECT_NEAR(p[1], 0.0, 1e-12);
    EXPECT_NEAR(p[2], 0.0, 1e-12);
}

TEST(StateVector, GhzOnFiveQubits)
{
    Circuit c(5);
    c.h(0);
    for (int q = 0; q + 1 < 5; ++q)
        c.cx(q, q + 1);
    const auto p = idealDistribution(c);
    EXPECT_NEAR(p[0], 0.5, 1e-12);
    EXPECT_NEAR(p[31], 0.5, 1e-12);
}

TEST(StateVector, CxControlIsFirstOperand)
{
    // |10> with qubit1 = 1: CX(1, 0) must flip qubit 0.
    StateVector sv(2);
    sv.applyX(1);
    sv.apply(Gate(GateKind::CX, 1, 0));
    EXPECT_EQ(sv.amplitudes()[3], Complex{1.0});
    // CX(0, 1) on |10>: control (qubit 0) is 0, so nothing happens.
    StateVector sv2(2);
    sv2.applyX(1);
    sv2.apply(Gate(GateKind::CX, 0, 1));
    EXPECT_EQ(sv2.amplitudes()[2], Complex{1.0});
}

TEST(StateVector, ToffoliComputesAnd)
{
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
            StateVector sv(3);
            if (a)
                sv.applyX(0);
            if (b)
                sv.applyX(1);
            sv.apply(Gate(GateKind::CCX, 0, 1, 2));
            const size_t expect = static_cast<size_t>(a) |
                                  (static_cast<size_t>(b) << 1) |
                                  (static_cast<size_t>(a & b) << 2);
            EXPECT_NEAR(std::abs(sv.amplitudes()[expect]), 1.0, 1e-12)
                << "a=" << a << " b=" << b;
        }
    }
}

TEST(StateVector, FastPathsMatchMatrixPath)
{
    // Apply CZ/CCZ/X/Z/Y via fast paths and via applyMatrix; compare.
    Circuit prep(3);
    prep.h(0);
    prep.rx(1, 0.7);
    prep.u3(2, 1.1, 0.3, -0.2);
    for (const Gate &g :
         {Gate(GateKind::CZ, 0, 2), Gate(GateKind::CCZ, 0, 1, 2),
          Gate(GateKind::X, 1), Gate(GateKind::Z, 0), Gate(GateKind::Y, 2)}) {
        StateVector fast(3);
        fast.apply(prep);
        fast.apply(g);

        StateVector slow(3);
        slow.apply(prep);
        std::vector<Qubit> qs;
        for (int i = 0; i < g.numQubits(); ++i)
            qs.push_back(g.qubit(i));
        slow.applyMatrix(g.matrix(), qs);

        for (size_t i = 0; i < fast.dim(); ++i)
            EXPECT_NEAR(std::abs(fast.amplitudes()[i] - slow.amplitudes()[i]),
                        0.0, 1e-12) << g.toString();
    }
}

TEST(StateVector, NonAdjacentQubitOperands)
{
    // CX between qubits 0 and 3 of a 4-qubit register.
    StateVector sv(4);
    sv.applyX(0);
    sv.apply(Gate(GateKind::CX, 0, 3));
    EXPECT_NEAR(std::abs(sv.amplitudes()[0b1001]), 1.0, 1e-12);
}

TEST(StateVector, ReversedOperandOrderMatchesSwappedMatrix)
{
    // CP is symmetric: CP(a, b) == CP(b, a).
    Circuit prep(2);
    prep.h(0);
    prep.h(1);
    StateVector s1(2), s2(2);
    s1.apply(prep);
    s2.apply(prep);
    s1.apply(Gate(GateKind::CP, 0, 1, 0.9));
    s2.apply(Gate(GateKind::CP, 1, 0, 0.9));
    for (size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(std::abs(s1.amplitudes()[i] - s2.amplitudes()[i]), 0.0,
                    1e-12);
}

TEST(StateVector, NormPreservedThroughLongRandomCircuit)
{
    Circuit c(4);
    c.h(0);
    for (int i = 0; i < 50; ++i) {
        c.u3(i % 4, 0.1 * i, 0.2 * i, -0.3 * i);
        c.cx(i % 4, (i + 1) % 4);
        if (i % 3 == 0)
            c.ccx(i % 4, (i + 1) % 4, (i + 2) % 4);
    }
    StateVector sv(4);
    sv.apply(c);
    EXPECT_NEAR(sv.normSquared(), 1.0, 1e-10);
}

TEST(StateVector, InnerProductOfOrthogonalStates)
{
    StateVector a(2, 0), b(2, 3);
    EXPECT_NEAR(std::abs(a.innerProduct(b)), 0.0, 1e-15);
    EXPECT_NEAR(std::abs(a.innerProduct(a)), 1.0, 1e-15);
}

TEST(UnitarySim, SingleGateMatchesGateMatrix)
{
    Circuit c(1);
    c.u3(0, 0.4, 1.2, -0.8);
    const auto u = circuitUnitary(c);
    EXPECT_LT(u.maxAbsDiff(u3Matrix(0.4, 1.2, -0.8)), 1e-12);
}

TEST(UnitarySim, CircuitUnitaryIsUnitary)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.ccz(0, 1, 2);
    c.rzz(1, 2, 0.7);
    const auto u = circuitUnitary(c);
    EXPECT_TRUE(u.isUnitary(1e-10));
}

TEST(UnitarySim, GateOrderMatters)
{
    Circuit ab(1), ba(1);
    ab.h(0);
    ab.t(0);
    ba.t(0);
    ba.h(0);
    EXPECT_GT(circuitHsd(ab, ba), 0.01);
}

TEST(UnitarySim, HsdZeroForEquivalentCircuits)
{
    // HZH = X.
    Circuit hzh(1), x(1);
    hzh.h(0);
    hzh.z(0);
    hzh.h(0);
    x.x(0);
    EXPECT_NEAR(circuitHsd(hzh, x), 0.0, 1e-12);
}

TEST(UnitarySim, KroneckerStructureOfParallelGates)
{
    // Parallel H on both qubits = H (x) H.
    Circuit c(2);
    c.h(0);
    c.h(1);
    const Matrix h = Gate(GateKind::H, 0).matrix();
    EXPECT_LT(circuitUnitary(c).maxAbsDiff(h.kron(h)), 1e-12);
}

}  // namespace
}  // namespace geyser
