/**
 * @file
 * Atom-loss channel tests (paper Sec 6 extension): lost atoms skip
 * gates and read out depolarized; fidelity degrades smoothly with the
 * loss rate.
 */
#include <gtest/gtest.h>

#include "metrics/metrics.hpp"
#include "sim/trajectory.hpp"

namespace geyser {
namespace {

TEST(AtomLoss, ZeroLossMatchesPlainNoise)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    NoiseModel a = NoiseModel::paperDefault();
    NoiseModel b = a;
    b.atomLoss = 0.0;
    TrajectoryConfig cfg{100, 4, false};
    EXPECT_EQ(noisyDistribution(c, a, cfg), noisyDistribution(c, b, cfg));
}

TEST(AtomLoss, CertainLossDepolarizesEverything)
{
    // With loss probability 1 every gate is skipped and every qubit
    // reads out uniformly random.
    Circuit c(2);
    c.x(0);
    c.x(1);
    NoiseModel nm{0.0, 0.0, false, 1.0};
    TrajectoryConfig cfg{50, 4, false};
    const auto p = noisyDistribution(c, nm, cfg);
    for (const double v : p)
        EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(AtomLoss, LossMakesIsolatedQubitUniform)
{
    // One-qubit circuit: loss rate q mixes the ideal |1> with uniform.
    Circuit c(1);
    c.x(0);
    NoiseModel nm{0.0, 0.0, false, 0.25};
    TrajectoryConfig cfg{20000, 8, true};
    const auto p = noisyDistribution(c, nm, cfg);
    // p(|0>) = loss * 0.5 = 0.125.
    EXPECT_NEAR(p[0], 0.125, 0.01);
}

TEST(AtomLoss, TvdDegradesMonotonicallyWithLossRate)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    TrajectoryConfig cfg{3000, 15, true};
    double prev = -1.0;
    for (const double loss : {0.0, 0.05, 0.2, 0.5}) {
        NoiseModel nm{0.0, 0.0, false, loss};
        const double tvd = noisyTvd(c, c, nm, cfg);
        EXPECT_GT(tvd, prev - 0.02) << loss;
        prev = tvd;
    }
    EXPECT_GT(prev, 0.2);
}

TEST(AtomLoss, GateSkippingKeepsStateNormalized)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    NoiseModel nm{0.001, 0.001, false, 0.3};
    TrajectoryConfig cfg{500, 3, true};
    const auto p = noisyDistribution(c, nm, cfg);
    double total = 0.0;
    for (const double v : p)
        total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace geyser
