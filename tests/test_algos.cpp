/**
 * @file
 * Benchmark-generator tests: functional correctness of the arithmetic
 * circuits (adders add, multipliers multiply, QFT matches the DFT) and
 * structural properties of the variational / random / Trotter circuits.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "algos/algos.hpp"
#include "algos/suite.hpp"
#include "sim/statevector.hpp"
#include "sim/unitary_sim.hpp"

namespace geyser {
namespace {

/** Run a circuit on basis-state input and return the basis output. */
size_t
basisOutput(const Circuit &core, size_t input)
{
    StateVector sv(core.numQubits(), input);
    sv.apply(core);
    const auto p = sv.probabilities();
    size_t best = 0;
    for (size_t i = 1; i < p.size(); ++i)
        if (p[i] > p[best])
            best = i;
    EXPECT_NEAR(p[best], 1.0, 1e-9) << "output is not a basis state";
    return best;
}

/** Parameterized over (a, b, bits, carry_in): adder must compute a+b. */
class AdderSweep : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(AdderSweep, ComputesSum)
{
    const auto [a, b, bits] = GetParam();
    const Circuit core = cuccaroAdderCore(bits, true);
    // Input layout: cin = qubit 0, b_i = 2i+1, a_i = 2i+2.
    size_t input = 0;
    for (int i = 0; i < bits; ++i) {
        if ((b >> i) & 1)
            input |= size_t{1} << (2 * i + 1);
        if ((a >> i) & 1)
            input |= size_t{1} << (2 * i + 2);
    }
    const size_t output = basisOutput(core, input);
    // Decode: sum bits land in the b register, carry in the top qubit.
    int sum = 0;
    for (int i = 0; i < bits; ++i)
        if (output & (size_t{1} << (2 * i + 1)))
            sum |= 1 << i;
    if (output & (size_t{1} << (2 * bits + 1)))
        sum |= 1 << bits;
    EXPECT_EQ(sum, a + b) << "a=" << a << " b=" << b;
    // The a register must be restored.
    int aOut = 0;
    for (int i = 0; i < bits; ++i)
        if (output & (size_t{1} << (2 * i + 2)))
            aOut |= 1 << i;
    EXPECT_EQ(aOut, a);
}

INSTANTIATE_TEST_SUITE_P(
    TwoBit, AdderSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0, 1, 2, 3), ::testing::Values(2)));

INSTANTIATE_TEST_SUITE_P(
    ThreeBit, AdderSweep,
    ::testing::Combine(::testing::Values(0, 3, 5, 7),
                       ::testing::Values(1, 4, 6), ::testing::Values(3)));

TEST(Adder, ModularVariantDropsCarry)
{
    // 4-bit adder without carry out: 9 + 8 = 17 = 1 (mod 16).
    const Circuit core = cuccaroAdderCore(4, false);
    EXPECT_EQ(core.numQubits(), 9);
    size_t input = 0;
    const int a = 9, b = 8;
    for (int i = 0; i < 4; ++i) {
        if ((b >> i) & 1)
            input |= size_t{1} << (2 * i + 1);
        if ((a >> i) & 1)
            input |= size_t{1} << (2 * i + 2);
    }
    const size_t output = basisOutput(core, input);
    int sum = 0;
    for (int i = 0; i < 4; ++i)
        if (output & (size_t{1} << (2 * i + 1)))
            sum |= 1 << i;
    EXPECT_EQ(sum, (a + b) % 16);
}

TEST(Adder, BenchmarkWidthsMatchTable1)
{
    EXPECT_EQ(adderBenchmark(1, true).numQubits(), 4);
    EXPECT_EQ(adderBenchmark(4, false).numQubits(), 9);
}

TEST(Multiplier, ToffoliCoreComputesProducts)
{
    // 1x2-bit: p = a * b for all inputs.
    const Circuit core = toffoliMultiplierCore(2);
    ASSERT_EQ(core.numQubits(), 5);
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 4; ++b) {
            size_t input = static_cast<size_t>(a) |
                           (static_cast<size_t>(b) << 1);
            const size_t output = basisOutput(core, input);
            const int p = static_cast<int>(output >> 3);
            EXPECT_EQ(p, a * b) << "a=" << a << " b=" << b;
        }
    }
}

TEST(Multiplier, QftCoreComputesProducts)
{
    // 2x3-bit Draper multiplier: exhaustive check over all inputs.
    const Circuit core = qftMultiplierCore(2, 3);
    ASSERT_EQ(core.numQubits(), 10);
    for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 8; ++b) {
            size_t input = static_cast<size_t>(a) |
                           (static_cast<size_t>(b) << 2);
            const size_t output = basisOutput(core, input);
            const int p = static_cast<int>(output >> 5);
            EXPECT_EQ(p, a * b) << "a=" << a << " b=" << b;
        }
    }
}

TEST(Qft, MatchesDftMatrix)
{
    // QFT|x> = (1/sqrt(N)) sum_y exp(2 pi i x y / N) |y>.
    for (const int n : {2, 3, 4}) {
        const Circuit qft = qftCore(n, true);
        const Matrix u = circuitUnitary(qft);
        const int dim = 1 << n;
        const double norm = 1.0 / std::sqrt(static_cast<double>(dim));
        Matrix dft(dim, dim);
        for (int x = 0; x < dim; ++x)
            for (int y = 0; y < dim; ++y)
                dft(y, x) = norm * std::exp(kI * (2.0 * kPi * x * y / dim));
        EXPECT_LT(u.maxAbsDiff(dft), 1e-9) << "n=" << n;
    }
}

TEST(Qft, NoSwapVariantIsBitReversed)
{
    const Circuit withSwaps = qftCore(3, true);
    const Circuit noSwaps = qftCore(3, false);
    EXPECT_EQ(withSwaps.countKind(GateKind::SWAP), 1);
    EXPECT_EQ(noSwaps.countKind(GateKind::SWAP), 0);
    EXPECT_GT(circuitHsd(withSwaps, noSwaps), 0.01);
}

bool
sameGates(const Circuit &a, const Circuit &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (!(a.gates()[i] == b.gates()[i]))
            return false;
    return true;
}

TEST(Vqe, StructureAndDeterminism)
{
    const Circuit a = vqeBenchmark(4, 20, 11);
    EXPECT_EQ(a.countKind(GateKind::CX), 20 * 3);
    EXPECT_EQ(a.countKind(GateKind::RY), 21 * 4);
    EXPECT_TRUE(sameGates(a, vqeBenchmark(4, 20, 11)));
    EXPECT_FALSE(sameGates(a, vqeBenchmark(4, 20, 12)));
}

TEST(Qaoa, EdgeAndRoundCounts)
{
    const Circuit c = qaoaBenchmark(5, 8, 3, 23);
    EXPECT_EQ(c.countKind(GateKind::H), 5);
    EXPECT_EQ(c.countKind(GateKind::RZZ), 8 * 3);
    EXPECT_EQ(c.countKind(GateKind::RX), 5 * 3);
    EXPECT_THROW(qaoaBenchmark(5, 11, 1, 1), std::invalid_argument);
}

TEST(Advantage, CycleStructure)
{
    const Circuit c = advantageBenchmark(6, 37);
    EXPECT_EQ(c.numQubits(), 9);
    // 9 one-qubit gates per cycle.
    int oneQubit = 0;
    for (const auto &g : c.gates())
        if (g.numQubits() == 1)
            ++oneQubit;
    EXPECT_EQ(oneQubit, 6 * 9);
    EXPECT_GT(c.countKind(GateKind::CZ), 0);
}

TEST(Heisenberg, TrotterStructure)
{
    const Circuit c = heisenbergBenchmark(6, 3, 0.1);
    EXPECT_EQ(c.numQubits(), 6);
    EXPECT_EQ(c.countKind(GateKind::RXX), 3 * 5);
    EXPECT_EQ(c.countKind(GateKind::RYY), 3 * 5);
    EXPECT_EQ(c.countKind(GateKind::RZZ), 3 * 5);
    EXPECT_EQ(c.countKind(GateKind::X), 3);  // Neel preparation.
}

TEST(Heisenberg, ConservesTotalMagnetizationWithoutField)
{
    // The XXX chain conserves total Z; starting from a basis state the
    // output support stays in the same Hamming-weight sector. RZ fields
    // are diagonal so they preserve the sector too.
    const Circuit c = heisenbergBenchmark(4, 2, 0.2);
    const auto p = idealDistribution(c);
    const int weight = 2;  // Neel state on 4 qubits has weight 2.
    double inSector = 0.0;
    for (size_t i = 0; i < p.size(); ++i) {
        int w = 0;
        for (int b = 0; b < 4; ++b)
            if (i & (size_t{1} << b))
                ++w;
        if (w == weight)
            inSector += p[i];
    }
    EXPECT_NEAR(inSector, 1.0, 1e-9);
}

TEST(Suite, TenBenchmarksWithFactories)
{
    const auto &suite = benchmarkSuite();
    ASSERT_EQ(suite.size(), 10u);
    for (const auto &spec : suite) {
        const Circuit c = spec.make();
        EXPECT_EQ(c.numQubits(), spec.numQubits) << spec.name;
        EXPECT_GT(c.size(), 0u) << spec.name;
        EXPECT_GT(spec.paper.totalPulses, 0) << spec.name;
    }
    EXPECT_EQ(benchmarkByName("qft-5").numQubits, 5);
    EXPECT_THROW(benchmarkByName("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace geyser
