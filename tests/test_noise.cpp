/**
 * @file
 * Noise-model and trajectory-simulator tests: channel semantics,
 * convergence toward exact channel output, monotonicity in the error
 * rate, and determinism.
 */
#include <gtest/gtest.h>

#include "metrics/metrics.hpp"
#include "sim/trajectory.hpp"

namespace geyser {
namespace {

TEST(NoiseModel, PaperDefaultRates)
{
    const auto nm = NoiseModel::paperDefault();
    EXPECT_DOUBLE_EQ(nm.bitFlip, 0.001);
    EXPECT_DOUBLE_EQ(nm.phaseFlip, 0.001);
    EXPECT_FALSE(nm.perPulse);
}

TEST(NoiseModel, PerPulseScalesWithGateCost)
{
    NoiseModel nm{0.001, 0.001, true};
    EXPECT_DOUBLE_EQ(nm.bitFlipFor(Gate(GateKind::U3, 0)), 0.001);
    EXPECT_DOUBLE_EQ(nm.bitFlipFor(Gate(GateKind::CZ, 0, 1)), 0.003);
    EXPECT_DOUBLE_EQ(nm.bitFlipFor(Gate(GateKind::CCZ, 0, 1, 2)), 0.005);
}

TEST(Trajectory, NoiselessMatchesIdeal)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.ccx(0, 1, 2);
    const auto noisy = noisyDistribution(c, NoiseModel::withRate(0.0));
    const auto ideal = idealDistribution(c);
    EXPECT_NEAR(totalVariationDistance(noisy, ideal), 0.0, 1e-12);
}

TEST(Trajectory, ConvergesToExactChannelOnOneGate)
{
    // One X gate with bit-flip rate p: the output is |1> with
    // probability 1-p and |0> with probability p. TVD to ideal = p.
    Circuit c(1);
    c.x(0);
    NoiseModel nm{0.1, 0.0, false};
    TrajectoryConfig cfg;
    cfg.trajectories = 20000;
    cfg.seed = 5;
    const auto noisy = noisyDistribution(c, nm, cfg);
    EXPECT_NEAR(noisy[0], 0.1, 0.01);
    EXPECT_NEAR(noisy[1], 0.9, 0.01);
}

TEST(Trajectory, PhaseFlipInvisibleInComputationalBasis)
{
    // Z errors after an X gate do not change measurement probabilities.
    Circuit c(1);
    c.x(0);
    NoiseModel nm{0.0, 0.3, false};
    TrajectoryConfig cfg;
    cfg.trajectories = 200;
    const auto noisy = noisyDistribution(c, nm, cfg);
    EXPECT_NEAR(noisy[1], 1.0, 1e-12);
}

TEST(Trajectory, PhaseFlipDamagesSuperpositions)
{
    // H then noisy-H: phase flips between the Hadamards show up.
    Circuit c(1);
    c.h(0);
    c.h(0);
    NoiseModel nm{0.0, 0.5, false};
    TrajectoryConfig cfg;
    cfg.trajectories = 4000;
    cfg.seed = 9;
    const auto noisy = noisyDistribution(c, nm, cfg);
    // With p=0.5 the first H's phase flip fully dephases: 50/50... the
    // second H's flip acts after measurement basis is fixed. Expect
    // p(|1>) near 0.25 + small second-order terms... just require a
    // substantial deviation from the ideal p(|1>) = 0.
    EXPECT_GT(noisy[1], 0.15);
}

TEST(Trajectory, TvdIncreasesWithNoiseRate)
{
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    for (int i = 0; i < 10; ++i) {
        c.cx(0, 1);
        c.cx(0, 1);
    }
    TrajectoryConfig cfg;
    cfg.trajectories = 400;
    cfg.seed = 21;
    const double t1 = noisyTvd(c, c, NoiseModel::withRate(0.0005), cfg);
    const double t2 = noisyTvd(c, c, NoiseModel::withRate(0.005), cfg);
    const double t3 = noisyTvd(c, c, NoiseModel::withRate(0.02), cfg);
    EXPECT_LT(t1, t2);
    EXPECT_LT(t2, t3);
}

TEST(Trajectory, FewerGatesMeanLowerTvd)
{
    // The core premise of the paper: a circuit with fewer (noisy)
    // operations has higher output fidelity.
    Circuit small(2);
    small.h(0);
    small.cx(0, 1);
    Circuit big(2);
    big.h(0);
    big.cx(0, 1);
    for (int i = 0; i < 15; ++i) {
        big.cx(0, 1);
        big.cx(0, 1);
    }
    const NoiseModel nm = NoiseModel::paperDefault();
    TrajectoryConfig cfg;
    cfg.trajectories = 2000;
    cfg.seed = 33;
    const double tvdSmall = noisyTvd(small, small, nm, cfg);
    const double tvdBig = noisyTvd(big, small, nm, cfg);
    EXPECT_LT(tvdSmall, tvdBig);
}

TEST(Trajectory, DeterministicForFixedSeed)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    TrajectoryConfig cfg;
    cfg.trajectories = 50;
    cfg.seed = 77;
    cfg.parallel = false;
    const auto a = noisyDistribution(c, NoiseModel::paperDefault(), cfg);
    const auto b = noisyDistribution(c, NoiseModel::paperDefault(), cfg);
    EXPECT_EQ(a, b);
}

TEST(Trajectory, ParallelMatchesSerial)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    TrajectoryConfig serial{200, 123, false};
    TrajectoryConfig parallel{200, 123, true};
    const auto a = noisyDistribution(c, NoiseModel::paperDefault(), serial);
    const auto b = noisyDistribution(c, NoiseModel::paperDefault(), parallel);
    // Same per-trajectory seeds, different accumulation order: results
    // agree to floating-point reassociation.
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(Metrics, TvdBasicProperties)
{
    const Distribution p{0.5, 0.5};
    const Distribution q{1.0, 0.0};
    EXPECT_NEAR(totalVariationDistance(p, p), 0.0, 1e-15);
    EXPECT_NEAR(totalVariationDistance(p, q), 0.5, 1e-15);
    EXPECT_NEAR(totalVariationDistance(q, {0.0, 1.0}), 1.0, 1e-15);
    EXPECT_THROW(totalVariationDistance(p, {1.0}), std::invalid_argument);
}

TEST(Metrics, CircuitStatsCountsEverything)
{
    Circuit c(3);
    c.u3(0, 1, 1, 1);
    c.u3(1, 1, 1, 1);
    c.cz(0, 1);
    c.ccz(0, 1, 2);
    const auto stats = circuitStats(c);
    EXPECT_EQ(stats.numQubits, 3);
    EXPECT_EQ(stats.u3Count, 2);
    EXPECT_EQ(stats.czCount, 1);
    EXPECT_EQ(stats.cczCount, 1);
    EXPECT_EQ(stats.totalPulses, 10);
    EXPECT_GT(stats.depthPulses, 0);
}

}  // namespace
}  // namespace geyser
