/**
 * @file
 * Parameterized invariant checks across the benchmark suite (small
 * rows) and all cheap techniques: pulse accounting consistency, depth
 * bounds, physical-basis output, and exact semantic preservation for
 * the non-composing techniques.
 */
#include <gtest/gtest.h>

#include <cctype>

#include "algos/suite.hpp"
#include "geyser/pipeline.hpp"

namespace geyser {
namespace {

class SuiteSweep
    : public ::testing::TestWithParam<std::tuple<const char *, Technique>>
{
};

TEST_P(SuiteSweep, CompileInvariantsHold)
{
    const auto [name, technique] = GetParam();
    const auto &spec = benchmarkByName(name);
    const CompileResult result = compile(technique, spec.make());

    // Output is physical and the pulse ledger is consistent.
    EXPECT_TRUE(result.physical.isPhysical());
    const auto &s = result.stats;
    EXPECT_EQ(s.totalPulses,
              1L * s.u3Count + 3L * s.czCount + 5L * s.cczCount);
    EXPECT_GE(s.totalPulses, s.depthPulses);
    EXPECT_GT(s.depthPulses, 0);

    // Only Geyser may emit CCZ.
    if (technique != Technique::Geyser)
        EXPECT_EQ(s.cczCount, 0);

    // Non-composing techniques preserve the output exactly; Geyser is
    // bounded by the paper's 1e-2 ideal-TVD budget (checked elsewhere).
    if (technique != Technique::Geyser)
        EXPECT_LT(idealTvd(result), 1e-7);  // FP accumulation on deep VQE

    // Layout bookkeeping: one atom per logical qubit, all distinct.
    ASSERT_EQ(result.finalLayout.size(),
              static_cast<size_t>(spec.numQubits));
    std::vector<bool> seen(static_cast<size_t>(result.physical.numQubits()),
                           false);
    for (const Qubit a : result.finalLayout) {
        ASSERT_GE(a, 0);
        ASSERT_LT(a, result.physical.numQubits());
        EXPECT_FALSE(seen[static_cast<size_t>(a)]);
        seen[static_cast<size_t>(a)] = true;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SmallRows, SuiteSweep,
    ::testing::Combine(
        ::testing::Values("adder-4", "vqe-4", "qaoa-5", "qft-5",
                          "multiplier-5"),
        ::testing::Values(Technique::Baseline, Technique::OptiMap,
                          Technique::Superconducting)),
    [](const auto &info) {
        std::string name = std::string(std::get<0>(info.param)) + "_" +
                           techniqueName(std::get<1>(info.param));
        for (auto &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(SuiteSweepNames, TestNamesAreSanitized)
{
    // The name generator uses '-' from benchmark names; gtest requires
    // alphanumerics. Keep this canary so failures are understandable.
    const std::string name = "adder-4";
    std::string sanitized = name;
    for (auto &c : sanitized)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    EXPECT_EQ(sanitized, "adder_4");
}

}  // namespace
}  // namespace geyser
